"""Failure injection: adversarial and degenerate workloads.

Every policy (and LHR especially) must survive pathological inputs a
production CDN node will eventually see: single-object floods, burst
timestamps, working sets of giant objects, cache sizes of one byte, and
traces shorter than a sliding window.
"""

import pytest

from repro.core import LhrCache, hro_bound
from repro.policies import POLICY_REGISTRY, make_policy
from repro.sim import build_policy
from repro.traces.request import Trace

ROBUST_POLICIES = sorted(set(POLICY_REGISTRY) - {"lrb", "lfo"})


def trace_of(rows):
    return Trace.from_tuples(rows, name="adversarial")


@pytest.fixture(scope="module")
def single_object_flood():
    return trace_of([(float(i), 7, 1000) for i in range(500)])


@pytest.fixture(scope="module")
def burst_same_timestamp():
    # 200 requests all at t=5.0 (zero inter-arrival times).
    return trace_of([(5.0, i % 20, 100) for i in range(200)])


@pytest.fixture(scope="module")
def giant_objects():
    # Every object bigger than the cache under test (capacity 1000).
    return trace_of([(float(i), i % 5, 10_000) for i in range(100)])


class TestAllPolicies:
    @pytest.mark.parametrize("name", ROBUST_POLICIES)
    def test_single_object_flood(self, name, single_object_flood):
        policy = make_policy(name, 10_000)
        policy.process(single_object_flood)
        # no-cache never admits by design; adaptsize admits an object of
        # size s with probability exp(-s/c), which can legitimately starve
        # a single large object until its threshold retunes.
        if name not in ("no-cache", "adaptsize"):
            # After the first touch (or two, for second-request filters)
            # everything should hit.
            assert policy.hits >= len(single_object_flood) - 3

    @pytest.mark.parametrize("name", ROBUST_POLICIES)
    def test_burst_same_timestamp(self, name, burst_same_timestamp):
        policy = make_policy(name, 1500)
        policy.process(burst_same_timestamp)  # must not divide by zero
        assert policy.hits + policy.misses == len(burst_same_timestamp)

    @pytest.mark.parametrize("name", ROBUST_POLICIES)
    def test_giant_objects_never_admitted(self, name, giant_objects):
        policy = make_policy(name, 1000)
        policy.process(giant_objects)
        assert policy.num_objects == 0
        assert policy.hits == 0

    @pytest.mark.parametrize("name", ROBUST_POLICIES)
    def test_one_byte_cache(self, name):
        policy = make_policy(name, 1)
        policy.process(trace_of([(float(i), i % 3, 1) for i in range(30)]))
        assert policy.used_bytes <= 1


class TestLhrPathologies:
    def test_trace_shorter_than_window(self):
        cache = LhrCache(1 << 20, seed=0)
        cache.process(trace_of([(float(i), i, 100) for i in range(10)]))
        assert cache.windows_processed == 0
        assert not cache.model_ready  # graceful: stays in bootstrap mode

    def test_zero_duration_window(self):
        # All requests at the same instant; rates would divide by zero
        # without the duration floor.
        cache = LhrCache(500, window_multiple=1.0, min_window_requests=0, seed=0)
        cache.process(trace_of([(1.0, i, 100) for i in range(50)]))
        assert cache.windows_processed >= 1

    def test_alternating_giant_and_tiny(self):
        rows = []
        for i in range(300):
            rows.append((float(i), 1000 + i % 3, 1))
            rows.append((float(i) + 0.5, 2000 + i % 3, 900))
        cache = LhrCache(1000, min_window_requests=64, seed=0)
        cache.process(trace_of(rows))
        assert cache.used_bytes <= 1000

    def test_hro_single_content(self):
        bound = hro_bound(
            trace_of([(float(i), 1, 100) for i in range(100)]), 1000
        )
        assert bound.hits == 99  # first request misses, rest hit

    def test_learning_policies_survive_burst(self, burst_same_timestamp):
        for name in ("lrb", "lfo"):
            kwargs = (
                {"training_batch": 64, "max_training_data": 256}
                if name == "lrb"
                else {"window_requests": 64}
            )
            policy = build_policy(name, 1500, **kwargs)
            policy.process(burst_same_timestamp)
            assert policy.hits + policy.misses == len(burst_same_timestamp)


class TestEngineEdgeCases:
    def test_empty_trace(self):
        from repro.sim import simulate

        result = simulate(make_policy("lru", 100), Trace([], name="empty"))
        assert result.requests == 0
        assert result.object_hit_ratio == 0.0

    def test_single_request(self):
        from repro.sim import simulate

        result = simulate(
            make_policy("lhd", 100), trace_of([(0.0, 1, 50)])
        )
        assert result.requests == 1
        assert result.hits == 0
