"""Property suite for every registered scenario generator.

Parametrized over :func:`known_scenarios` so a newly registered scenario
is covered automatically: seeded determinism, monotone non-decreasing
timestamps, positive sizes, and bit-identical Request-list vs PackedTrace
emission.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.packed import PackedTrace
from repro.workloads import (
    SCENARIO_REGISTRY,
    ScenarioConfig,
    generate_packed,
    generate_trace,
    get_scenario,
    known_scenarios,
    require_seed,
)

#: Small but long enough to cross every scenario's change point at the
#: default parameters (phase_requests=1000, cycle_requests=2000, ...).
NUM_REQUESTS = 2500
SEED = 11


def config_for(name: str, seed: int = SEED) -> ScenarioConfig:
    return ScenarioConfig.make(name, NUM_REQUESTS, seed)


@pytest.mark.parametrize("name", known_scenarios())
class TestScenarioProperties:
    def test_seeded_determinism(self, name):
        a = generate_packed(config_for(name))
        b = generate_packed(config_for(name))
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.obj_ids, b.obj_ids)
        np.testing.assert_array_equal(a.sizes, b.sizes)

    def test_different_seed_diverges(self, name):
        a = generate_packed(config_for(name, seed=SEED))
        b = generate_packed(config_for(name, seed=SEED + 1))
        assert not np.array_equal(a.obj_ids, b.obj_ids)

    def test_requested_length(self, name):
        packed = generate_packed(config_for(name))
        assert len(packed) == NUM_REQUESTS

    def test_timestamps_monotone_nondecreasing(self, name):
        packed = generate_packed(config_for(name))
        assert np.all(np.diff(packed.times) >= 0)
        assert packed.times[0] >= 0

    def test_sizes_positive(self, name):
        packed = generate_packed(config_for(name))
        assert np.all(packed.sizes > 0)

    def test_constant_size_per_content(self, name):
        # Trace.validate() enforces one size per obj_id; the packed and
        # list emissions share columns, so checking the trace covers both.
        generate_trace(config_for(name)).validate()

    def test_packed_and_request_list_bit_identical(self, name):
        config = config_for(name)
        packed = generate_packed(config)
        roundtrip = PackedTrace.from_trace(generate_trace(config))
        np.testing.assert_array_equal(packed.times, roundtrip.times)
        np.testing.assert_array_equal(packed.obj_ids, roundtrip.obj_ids)
        np.testing.assert_array_equal(packed.sizes, roundtrip.sizes)

    def test_metadata_stamped(self, name):
        packed = generate_packed(config_for(name))
        assert packed.metadata["scenario"] == name
        assert packed.metadata["seed"] == SEED
        assert packed.metadata["params"] == config_for(name).resolved_params()


class TestRegistry:
    def test_five_scenarios_registered(self):
        assert set(known_scenarios()) >= {
            "churn", "flash-crowd", "diurnal", "one-hit-flood", "size-shift"
        }

    def test_registry_entries_are_described(self):
        for name in known_scenarios():
            spec = SCENARIO_REGISTRY[name]
            assert spec.description
            assert spec.defaults

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        from repro.workloads import register_scenario

        with pytest.raises(ValueError, match="already registered"):
            register_scenario("churn", "dup", {})(lambda n, s, p: None)


class TestScenarioConfig:
    def test_seed_none_raises(self):
        with pytest.raises(ValueError, match="seed"):
            ScenarioConfig.make("churn", 100, None)

    def test_require_seed_none_raises(self):
        with pytest.raises(ValueError, match="OS entropy"):
            require_seed(None)

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            ScenarioConfig.make("churn", 100, 0, bogus=1.0)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError, match="num_requests"):
            ScenarioConfig.make("churn", 0, 0)

    def test_dict_roundtrip(self):
        config = ScenarioConfig.make("churn", 500, 3, alpha=1.1)
        assert ScenarioConfig.from_dict(config.as_dict()) == config

    def test_from_dict_aliases(self):
        config = ScenarioConfig.from_dict(
            {"scenario": "diurnal", "num_requests": 400, "seed": 2}
        )
        assert config.scenario == "diurnal"
        assert config.num_requests == 400

    def test_from_dict_requires_seed(self):
        with pytest.raises(ValueError, match="seed"):
            ScenarioConfig.from_dict({"name": "churn", "length": 100})

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown scenario config keys"):
            ScenarioConfig.from_dict(
                {"name": "churn", "length": 100, "seed": 0, "oops": 1}
            )

    def test_override_changes_output(self):
        base = generate_packed(config_for("churn"))
        skewed = generate_packed(
            ScenarioConfig.make("churn", NUM_REQUESTS, SEED, alpha=1.4)
        )
        assert not np.array_equal(base.obj_ids, skewed.obj_ids)


class TestScenarioShapes:
    """Each scenario actually exhibits its advertised non-stationarity."""

    def test_churn_reshuffles_head(self):
        config = ScenarioConfig.make(
            "churn", 4000, 7, phase_requests=2000.0, churn_fraction=0.9
        )
        packed = generate_packed(config)
        first = set(np.unique(packed.obj_ids[:2000])[:20].tolist())
        # With 90% of the mapping permuted the phase-1 and phase-2 head
        # request distributions must differ.
        half1 = packed.obj_ids[:2000]
        half2 = packed.obj_ids[2000:]
        top1 = np.bincount(half1).argmax()
        assert np.count_nonzero(half2 == top1) != np.count_nonzero(half1 == top1)
        assert packed.metadata["phase_boundaries"]
        assert first  # head exists

    def test_flash_crowd_window_dominated_by_flash_ids(self):
        config = ScenarioConfig.make("flash-crowd", 4000, 7)
        packed = generate_packed(config)
        params = config.resolved_params()
        start, stop = packed.metadata["flash_window"]
        in_flash = packed.obj_ids[start:stop]
        flash_share = np.mean(in_flash >= params["num_contents"])
        assert flash_share == pytest.approx(params["flash_weight"], abs=0.1)
        outside = np.concatenate([packed.obj_ids[:start], packed.obj_ids[stop:]])
        assert np.mean(outside >= params["num_contents"]) == 0.0

    def test_one_hit_flood_ids_never_repeat(self):
        packed = generate_packed(ScenarioConfig.make("one-hit-flood", 4000, 7))
        num_contents = packed.metadata["params"]["num_contents"]
        flood_ids = packed.obj_ids[packed.obj_ids >= num_contents]
        assert packed.metadata["flood_requests"] == len(flood_ids)
        assert len(np.unique(flood_ids)) == len(flood_ids)

    def test_size_shift_moves_byte_mass(self):
        packed = generate_packed(ScenarioConfig.make("size-shift", 4000, 7))
        shift = packed.metadata["shift_index"]
        before = packed.sizes[:shift].mean()
        after = packed.sizes[shift:].mean()
        assert after > 2 * before

    def test_diurnal_head_rotates(self):
        config = ScenarioConfig.make(
            "diurnal", 4000, 7, cycle_requests=4000.0, alpha_day=1.2
        )
        packed = generate_packed(config)
        day_head = np.bincount(packed.obj_ids[:1000]).argmax()
        night = packed.obj_ids[1500:2500]  # trough of the cycle
        day = packed.obj_ids[:1000]
        night_share = np.count_nonzero(night == day_head) / len(night)
        day_share = np.count_nonzero(day == day_head) / len(day)
        assert night_share < day_share
