"""Scenario-golden regression corpus: pinned hit ratios per scenario.

``golden_scenarios.json`` freezes what every registered policy does on a
small instance of every registered scenario — counters exactly, ratios
to 1e-9, plus the drift/retrain activity of the cells that have a drift
pipeline.  This is the non-stationary companion to
``tests/sim/test_golden.py``: any change to a generator, the sweep
engine, or a policy shows up here as a diff.

Regenerate after an *intentional* behaviour change with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/workloads/test_golden_scenarios.py -q

and review the fixture diff like code.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.sim import known_policies
from repro.workloads import ScenarioConfig, known_scenarios, run_workload_lab

GOLDEN_PATH = Path(__file__).parent / "golden_scenarios.json"

#: Fixture contract: change these and every pinned number changes too.
NUM_REQUESTS = 800
SEED = 7
CAPACITY_FRACTION = 0.15
GOLDEN_KWARGS = {
    "lrb": {"training_batch": 256, "max_training_data": 1024},
    "lfo": {"window_requests": 200},
}


def compute_golden() -> dict:
    configs = [
        ScenarioConfig.make(name, NUM_REQUESTS, SEED) for name in known_scenarios()
    ]
    report = run_workload_lab(
        configs,
        known_policies(),
        capacity_fraction=CAPACITY_FRACTION,
        policy_kwargs=GOLDEN_KWARGS,
    )
    scenarios = {}
    for scenario_report in report.reports:
        scenarios[scenario_report.scenario] = {
            "capacity": scenario_report.capacity,
            "unique_bytes": scenario_report.unique_bytes,
            "policies": {cell.policy: cell.as_dict() for cell in scenario_report.cells},
        }
    return {
        "num_requests": NUM_REQUESTS,
        "seed": SEED,
        "capacity_fraction": CAPACITY_FRACTION,
        "policy_kwargs": GOLDEN_KWARGS,
        "scenarios": scenarios,
    }


def regenerating() -> bool:
    return os.environ.get("REPRO_REGEN_GOLDEN", "") not in ("", "0")


def test_golden_scenarios():
    current = compute_golden()
    if regenerating() or not GOLDEN_PATH.exists():
        GOLDEN_PATH.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH.name}; review and commit the diff")

    golden = json.loads(GOLDEN_PATH.read_text())
    for key in ("num_requests", "seed", "capacity_fraction"):
        assert golden[key] == current[key], "fixture contract drifted"
    assert sorted(golden["scenarios"]) == sorted(current["scenarios"]), (
        "scenario registry changed; regenerate the fixture deliberately"
    )

    count_keys = (
        "requests", "hits", "evictions", "admissions",
        "drift_windows", "drift_detections", "retrains",
    )
    ratio_keys = ("object_hit_ratio", "byte_hit_ratio")
    mismatches = []
    for scenario, pinned_scenario in golden["scenarios"].items():
        now_scenario = current["scenarios"][scenario]
        if pinned_scenario["capacity"] != now_scenario["capacity"]:
            mismatches.append(
                f"{scenario}.capacity: {pinned_scenario['capacity']} -> "
                f"{now_scenario['capacity']}"
            )
        assert sorted(pinned_scenario["policies"]) == sorted(
            now_scenario["policies"]
        ), "policy registry changed; regenerate the fixture deliberately"
        for policy, pinned in pinned_scenario["policies"].items():
            now = now_scenario["policies"][policy]
            for key in count_keys:
                if pinned[key] != now[key]:
                    mismatches.append(
                        f"{scenario}.{policy}.{key}: {pinned[key]} -> {now[key]}"
                    )
            for key in ratio_keys:
                if abs(pinned[key] - now[key]) > 1e-9:
                    mismatches.append(
                        f"{scenario}.{policy}.{key}: {pinned[key]} -> {now[key]}"
                    )
    assert not mismatches, (
        "behaviour drifted from the scenario-golden corpus (regenerate only "
        "if intentional):\n" + "\n".join(mismatches)
    )
