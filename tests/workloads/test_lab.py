"""The workload lab runner and its ``repro workload`` CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import MemoryRecorder
from repro.traces.loader import load_trace_csv
from repro.workloads import (
    ScenarioConfig,
    known_scenarios,
    packed_unique_bytes,
    run_workload_lab,
)
from repro.workloads.scenarios import generate_packed

CHURN = ScenarioConfig.make("churn", 2000, 3)


class TestRunWorkloadLab:
    def test_basic_report_shape(self):
        report = run_workload_lab([CHURN], ["lru", "lhr"])
        assert report.policies == ["lru", "lhr"]
        scenario = report.scenario("churn")
        assert scenario.num_requests == 2000
        assert len(scenario.cells) == 2
        cell = scenario.cell("lru")
        assert cell.requests == 2000
        assert 0.0 <= cell.object_hit_ratio <= 1.0

    def test_drift_counts_only_for_drift_policies(self):
        report = run_workload_lab(
            [ScenarioConfig.make("churn", 4000, 0)], ["lru", "lhr"]
        )
        scenario = report.scenario("churn")
        lru = scenario.cell("lru")
        lhr = scenario.cell("lhr")
        assert (lru.drift_windows, lru.drift_detections, lru.retrains) == (0, 0, 0)
        assert lhr.drift_windows > 0
        assert lhr.retrains > 0
        assert lhr.drift_detections <= lhr.drift_windows

    def test_serial_and_parallel_identical(self):
        serial = run_workload_lab([CHURN], ["lru", "lhr"], jobs=0)
        parallel = run_workload_lab([CHURN], ["lru", "lhr"], jobs=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_capacity_from_unique_bytes(self):
        report = run_workload_lab([CHURN], ["lru"], capacity_fraction=0.25)
        scenario = report.scenario("churn")
        expected = packed_unique_bytes(generate_packed(CHURN))
        assert scenario.unique_bytes == expected
        assert scenario.capacity == int(0.25 * expected)

    def test_repeated_scenario_counts_stay_distinct(self):
        # Two churn configs in one matrix: the lab_run tag keeps each
        # sweep's drift events attributed to its own report.
        calm = ScenarioConfig.make("churn", 3000, 1, churn_fraction=0.0)
        stormy = ScenarioConfig.make("churn", 3000, 1, alpha=1.3)
        report = run_workload_lab([calm, stormy], ["lhr"])
        first, second = report.reports
        assert first.config["params"] == {"churn_fraction": 0.0}
        assert second.config["params"] == {"alpha": 1.3}
        total_windows = first.cell("lhr").drift_windows + second.cell(
            "lhr"
        ).drift_windows
        assert total_windows > 0

    def test_recorder_receives_tagged_events(self):
        recorder = MemoryRecorder()
        run_workload_lab([CHURN], ["lhr"], recorder=recorder)
        drift_events = [
            e for e in recorder.events if e["event"] == "lhr.drift"
        ]
        assert drift_events
        assert all(e["scenario"] == "churn" for e in drift_events)
        assert all(e["lab_run"] == 0 for e in drift_events)

    def test_analyze_attaches_divergence(self):
        report = run_workload_lab(
            [ScenarioConfig.make("churn", 1200, 3)],
            ["lru", "lhr"],
            analyze=True,
            analyze_window=400,
        )
        divergence = report.scenario("churn").divergence
        assert divergence is not None
        assert divergence["policy"] == "lhr"
        assert 0.0 <= divergence["agreement_rate"] <= 1.0
        assert "miss_taxonomy" in divergence

    def test_analyze_skipped_when_policy_absent(self):
        report = run_workload_lab(
            [ScenarioConfig.make("churn", 800, 3)], ["lru"], analyze=True
        )
        assert report.scenario("churn").divergence is None

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError, match="no scenario configs"):
            run_workload_lab([], ["lru"])

    def test_bad_capacity_fraction_rejected(self):
        with pytest.raises(ValueError, match="capacity_fraction"):
            run_workload_lab([CHURN], ["lru"], capacity_fraction=0.0)

    def test_render_text_contains_grid(self):
        report = run_workload_lab([CHURN], ["lru", "lhr"])
        text = report.render_text()
        assert "scenario churn" in text
        assert "lru" in text and "lhr" in text
        assert "retrain" in text

    def test_json_roundtrip(self):
        report = run_workload_lab([CHURN], ["lru"])
        payload = json.loads(report.to_json())
        assert payload["policies"] == ["lru"]
        assert payload["scenarios"][0]["scenario"] == "churn"


class TestWorkloadCli:
    def test_list(self, capsys):
        assert main(["workload", "list"]) == 0
        out = capsys.readouterr().out
        for name in known_scenarios():
            assert name in out

    def test_describe(self, capsys):
        assert main(["workload", "describe", "--scenario", "churn"]) == 0
        out = capsys.readouterr().out
        assert "churn_fraction" in out

    def test_describe_unknown_scenario(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["workload", "describe", "--scenario", "bogus"])

    def test_generate_writes_loadable_trace(self, tmp_path, capsys):
        out_path = tmp_path / "churn.csv"
        assert main([
            "workload", "generate", "--scenario", "churn",
            "--requests", "300", "--seed", "5", "-o", str(out_path),
        ]) == 0
        trace = load_trace_csv(out_path)
        assert len(trace) == 300
        trace.validate()

    def test_generate_with_param_override(self, tmp_path):
        out_path = tmp_path / "churn.csv"
        assert main([
            "workload", "generate", "--scenario", "churn",
            "--requests", "200", "--seed", "5",
            "--param", "num_contents=50", "-o", str(out_path),
        ]) == 0
        trace = load_trace_csv(out_path)
        assert len(trace.unique_contents()) <= 50

    def test_bad_param_syntax(self):
        with pytest.raises(SystemExit, match="key=value"):
            main([
                "workload", "generate", "--scenario", "churn",
                "--param", "alpha", "-o", "/tmp/x.csv",
            ])

    def test_non_numeric_param(self):
        with pytest.raises(SystemExit, match="expects a number"):
            main([
                "workload", "generate", "--scenario", "churn",
                "--param", "alpha=high", "-o", "/tmp/x.csv",
            ])

    def test_unknown_param_rejected(self):
        with pytest.raises(SystemExit, match="unknown parameters"):
            main([
                "workload", "generate", "--scenario", "churn",
                "--param", "bogus=1", "-o", "/tmp/x.csv",
            ])

    def test_run_text_report(self, capsys):
        assert main([
            "workload", "run", "--scenario", "churn",
            "--policies", "lru,lhr", "--requests", "1500", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario churn" in out
        assert "lhr" in out
        assert "retrain" in out

    def test_run_json_report_and_file(self, tmp_path, capsys):
        json_path = tmp_path / "lab.json"
        assert main([
            "workload", "run", "--scenario", "churn,diurnal",
            "--policies", "lru", "--requests", "600",
            "--format", "json", "--json", str(json_path),
        ]) == 0
        payload = json.loads(json_path.read_text())
        names = [s["scenario"] for s in payload["scenarios"]]
        assert names == ["churn", "diurnal"]
        stdout_payload = json.loads(
            capsys.readouterr().out.rsplit("wrote lab report", 1)[0]
        )
        assert stdout_payload == payload

    def test_run_all_expands_registry(self, capsys):
        assert main([
            "workload", "run", "--scenario", "all",
            "--policies", "lru", "--requests", "400",
        ]) == 0
        out = capsys.readouterr().out
        for name in known_scenarios():
            assert f"scenario {name}" in out

    def test_run_unknown_policy(self):
        with pytest.raises((SystemExit, ValueError)):
            main([
                "workload", "run", "--scenario", "churn",
                "--policies", "nope", "--requests", "300",
            ])
