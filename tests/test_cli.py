"""Command-line interface: size parsing, trace IO, subcommand wiring."""

import argparse
import json

import pytest

from repro.cli import build_parser, load_any_trace, main, parse_size
from repro.traces.loader import save_trace_csv, save_trace_webcachesim
from repro.traces.synthetic import irm_trace


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("1kb", 1 << 10),
            ("512MB", 512 << 20),
            ("4GB", 4 << 30),
            ("1.5gb", int(1.5 * (1 << 30))),
            ("1tb", 1 << 40),
            ("100 b", 100),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["abc", "4XB", ""])
    def test_invalid(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size(text)

    @pytest.mark.parametrize("text", ["0", "-5", "-1GB", "0kb", "-0.5mb"])
    def test_non_positive_rejected(self, text):
        """A negative or zero size is a typo, not a tiny cache — it must
        be rejected, never silently clamped to one byte."""
        with pytest.raises(argparse.ArgumentTypeError, match="positive"):
            parse_size(text)

    def test_sub_byte_fraction_rounds_up_to_one(self):
        assert parse_size("0.5b") == 1


class TestLoadAnyTrace:
    def test_dispatch_by_extension(self, tmp_path):
        trace = irm_trace(50, 10, seed=0)
        csv_path = tmp_path / "t.csv"
        wcs_path = tmp_path / "t.tr"
        save_trace_csv(trace, csv_path)
        save_trace_webcachesim(trace, wcs_path)
        assert len(load_any_trace(str(csv_path))) == 50
        assert len(load_any_trace(str(wcs_path))) == 50

    def test_missing_file(self):
        with pytest.raises(SystemExit, match="does not exist"):
            load_any_trace("/nonexistent/file.csv")


class TestSubcommands:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(irm_trace(400, 40, mean_size=1 << 12, seed=1), path)
        return str(path)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_generate_and_summarize(self, tmp_path, capsys):
        out = str(tmp_path / "gen.csv")
        assert main(
            ["trace", "generate", "--spec", "cdn-c", "--scale", "0.005",
             "-o", out]
        ) == 0
        assert main(["trace", "summarize", out]) == 0
        captured = capsys.readouterr().out
        assert "Unique contents" in captured

    def test_trace_convert(self, trace_file, tmp_path, capsys):
        out = str(tmp_path / "out.tr")
        assert main(["trace", "convert", trace_file, out]) == 0
        assert "webcachesim" in capsys.readouterr().out

    def test_simulate(self, trace_file, capsys):
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "1MB", "--window", "100"]
        ) == 0
        captured = capsys.readouterr().out
        assert "object_hit_ratio" in captured
        assert "per-window hit ratio" in captured

    def test_compare(self, trace_file, capsys):
        assert main(
            ["compare", "--trace", trace_file, "--policies", "lru,gdsf",
             "--capacities", "512KB", "1MB"]
        ) == 0
        captured = capsys.readouterr().out
        assert "gdsf" in captured and "lru" in captured

    def test_compare_parallel_jobs_matches_serial(self, trace_file, capsys):
        args = ["compare", "--trace", trace_file, "--policies", "lru,gdsf",
                "--capacities", "512KB", "1MB"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main([*args, "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # Identical tables modulo the wall-clock runtime column.
        def strip(text):
            return [
                [c for i, c in enumerate(line.split()) if i != 8]
                for line in text.splitlines() if line
            ]

        assert strip(serial_out) == strip(parallel_out)

    def test_simulate_warmup_excludes_requests(self, trace_file, capsys):
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "1MB", "--warmup", "100"]
        ) == 0
        captured = capsys.readouterr().out
        # 400-request trace minus 100 warmup requests.
        assert " 300 " in captured

    def test_bounds(self, trace_file, capsys):
        assert main(
            ["bounds", "--trace", trace_file, "--capacity", "1MB"]
        ) == 0
        captured = capsys.readouterr().out
        for name in ("infinite-cap", "pfoo-u", "hro", "belady-size", "pfoo-l"):
            assert name in captured

    def test_simulate_rejects_unknown_policy(self, trace_file):
        with pytest.raises(SystemExit):
            main(["simulate", "--trace", trace_file, "--policy", "bogus",
                  "--capacity", "1MB"])

    def test_prototype_caffeine(self, capsys):
        assert main(
            ["prototype", "--spec", "cdn-c", "--system", "caffeine",
             "--scale", "0.003"]
        ) == 0
        captured = capsys.readouterr().out
        assert "caffeine" in captured and "lhr" in captured

    def test_curve(self, trace_file, capsys):
        assert main(
            ["curve", "--trace", trace_file, "--points", "6",
             "--target", "0.2"]
        ) == 0
        captured = capsys.readouterr().out
        assert "object hit" in captured
        assert "target 20%" in captured


class TestAnalyze:
    """``repro analyze``: decision-trace a policy and HRO over one trace
    and report miss taxonomy + divergence."""

    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("analyze") / "trace.csv"
        save_trace_csv(
            irm_trace(2500, 150, alpha=0.9, mean_size=1 << 10, seed=17), path
        )
        return str(path)

    def test_text_report(self, trace_file, capsys):
        assert main(
            ["analyze", "--trace", trace_file, "--policy", "lru",
             "--capacity", "32KB", "--window", "500"]
        ) == 0
        out = capsys.readouterr().out
        assert "miss taxonomy" in out
        assert "agreement" in out
        assert "evicted_early" in out

    def test_json_report_taxonomy_sums(self, trace_file, capsys):
        assert main(
            ["analyze", "--trace", trace_file, "--policy", "lru",
             "--capacity", "32KB", "--window", "500", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        tax = payload["miss_taxonomy"]
        classes = ("cold", "one_hit_wonder", "admission_rejected",
                   "evicted_early")
        assert sum(tax[c] for c in classes) == tax["total_misses"]
        totals = payload["divergence"]["totals"]
        assert 0.0 <= totals["agreement_rate"] <= 1.0
        assert payload["requests"] == 2500
        assert sum(w["requests"] for w in payload["divergence"]["windows"]) \
            == 2500

    def test_csv_output(self, trace_file, tmp_path, capsys):
        csv_path = tmp_path / "divergence.csv"
        assert main(
            ["analyze", "--trace", trace_file, "--policy", "lru",
             "--capacity", "32KB", "--window", "500",
             "--csv", str(csv_path)]
        ) == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0].startswith("window,requests,")
        assert len(lines) == 1 + 5  # header + 2500/500 windows
        assert "wrote per-window divergence series" in capsys.readouterr().out

    def test_unknown_policy_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            main(["analyze", "--trace", trace_file, "--policy", "bogus",
                  "--capacity", "32KB"])


class TestObservabilityFlags:
    """--log-json / --metrics-out / --verbose on simulate, compare and
    prototype (the acceptance path for the instrumentation layer)."""

    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(irm_trace(800, 60, mean_size=1 << 12, seed=2), path)
        return str(path)

    def test_simulate_log_json_emits_windows(self, trace_file, tmp_path):
        log = tmp_path / "events.jsonl"
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "64KB", "--window", "200",
             "--log-json", str(log)]
        ) == 0
        events = [json.loads(line) for line in log.read_text().splitlines()]
        assert events, "event log is empty"
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert sum(e["event"] == "sim.window" for e in events) == 4

    def test_simulate_lhr_emits_lifecycle_events(self, tmp_path):
        # Long enough for LHR's internal sliding window to close at
        # least once, so the learner lifecycle events actually fire.
        trace_path = tmp_path / "long.csv"
        save_trace_csv(
            irm_trace(2000, 120, alpha=0.8, mean_size=1 << 10, seed=11),
            trace_path,
        )
        log = tmp_path / "events.jsonl"
        assert main(
            ["simulate", "--trace", str(trace_path), "--policy", "lhr",
             "--capacity", "16KB", "--window", "500",
             "--log-json", str(log)]
        ) == 0
        types = {
            json.loads(line)["event"]
            for line in log.read_text().splitlines()
        }
        assert "sim.window" in types
        assert types & {"lhr.retrain", "lhr.drift"}

    def test_simulate_metrics_out_json(self, trace_file, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "64KB", "--metrics-out", str(out)]
        ) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["sim_requests_total"]["value"] == 800
        assert snapshot["sim_replay_seconds"]["count"] == 1

    def test_simulate_metrics_out_prometheus(self, trace_file, tmp_path):
        out = tmp_path / "metrics.prom"
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "64KB", "--metrics-out", str(out)]
        ) == 0
        text = out.read_text()
        assert "# TYPE sim_requests_total counter" in text
        assert 'sim_replay_seconds_bucket{le="+Inf"} 1' in text

    def test_simulate_verbose_prints_events(self, trace_file, capsys):
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "64KB", "--window", "400", "--verbose"]
        ) == 0
        assert "[sim.window]" in capsys.readouterr().err

    def test_compare_parallel_log_json(self, trace_file, tmp_path):
        log = tmp_path / "events.jsonl"
        out = tmp_path / "metrics.json"
        assert main(
            ["compare", "--trace", trace_file, "--policies", "lru,gdsf",
             "--capacities", "64KB", "--jobs", "2", "--warmup", "100",
             "--log-json", str(log), "--metrics-out", str(out)]
        ) == 0
        events = [json.loads(line) for line in log.read_text().splitlines()]
        types = [e["event"] for e in events]
        assert types.count("sweep.cell_start") == 2
        assert types.count("sweep.cell_done") == 2
        snapshot = json.loads(out.read_text())
        # Two cells, each replaying 800 - 100 counted requests.
        assert snapshot["sim_requests_total"]["value"] == 2 * 700

    def test_prototype_obs_flags(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert main(
            ["prototype", "--spec", "cdn-c", "--system", "caffeine",
             "--scale", "0.003", "--log-json", str(log)]
        ) == 0
        assert "lhr" in capsys.readouterr().out
        events = [json.loads(line) for line in log.read_text().splitlines()]
        assert all(e["event"].split(".")[0] in ("lhr", "policy", "sim")
                   for e in events)

    def test_no_flags_means_no_output_files(self, trace_file, capsys):
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "64KB"]
        ) == 0
        captured = capsys.readouterr()
        assert "wrote event log" not in captured.out
        assert "wrote metrics snapshot" not in captured.out


class TestLiveOpsCli:
    """--serve, profile, and bench-compare (the live-ops surface)."""

    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(irm_trace(800, 60, mean_size=1 << 12, seed=3), path)
        return str(path)

    def _telemetry(self, path, **overrides):
        payload = {
            "schema": "repro-bench/1",
            "name": "throughput",
            "scale": 0.01,
            "seed": 1,
            "jobs": 0,
            "wall_seconds": 2.0,
            "requests": 20000,
            "throughput_rps": 10000.0,
            "peak_rss_bytes": 100 * (1 << 20),
            "hit_ratios": {"lru@1000": 0.40},
            "obs_overhead_percent": None,
            "extra": {},
        }
        payload.update(overrides)
        path.write_text(json.dumps(payload))
        return str(path)

    def test_simulate_serve_ephemeral_port(self, trace_file, capsys):
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "64KB", "--serve", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving /metrics /healthz /progress at http://" in out
        assert "object_hit_ratio" in out

    def test_compare_serve_ephemeral_port(self, trace_file, capsys):
        assert main(
            ["compare", "--trace", trace_file, "--policies", "lru,gdsf",
             "--capacities", "64KB", "--serve", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving /metrics /healthz /progress at http://" in out

    def test_profile_text_and_collapsed(self, trace_file, tmp_path, capsys):
        collapsed = tmp_path / "stacks.folded"
        assert main(
            ["profile", trace_file, "lru", "--capacity", "64KB",
             "--interval-ms", "1", "--collapsed", str(collapsed)]
        ) == 0
        out = capsys.readouterr().out
        assert "profile: lru" in out
        assert "replay loop (total)" in out
        for line in collapsed.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) > 0

    def test_profile_json(self, trace_file, capsys):
        assert main(
            ["profile", trace_file, "lru", "--capacity", "64KB",
             "--interval-ms", "1", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "lru"
        assert any(
            row["metric"] == "sim_replay_seconds" for row in payload["phases"]
        )

    def test_profile_rejects_unknown_policy(self, trace_file):
        with pytest.raises(SystemExit):
            main(["profile", trace_file, "nope", "--capacity", "64KB"])

    def test_bench_compare_pass(self, tmp_path, capsys):
        a = self._telemetry(tmp_path / "a.json")
        b = self._telemetry(tmp_path / "b.json")
        assert main(["bench-compare", a, b]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_bench_compare_regression_exits_one(self, tmp_path, capsys):
        a = self._telemetry(tmp_path / "a.json")
        b = self._telemetry(tmp_path / "b.json", throughput_rps=8000.0)
        assert main(["bench-compare", a, b]) == 1
        out = capsys.readouterr().out
        assert "REGRESS" in out
        assert "throughput_rps" in out

    def test_bench_compare_warn_only_exits_zero(self, tmp_path, capsys):
        a = self._telemetry(tmp_path / "a.json")
        b = self._telemetry(tmp_path / "b.json", throughput_rps=8000.0)
        assert main(["bench-compare", a, b, "--warn-only"]) == 0
        captured = capsys.readouterr()
        assert "REGRESS" in captured.out
        assert "warn-only" in captured.err

    def test_bench_compare_json_format(self, tmp_path, capsys):
        a = self._telemetry(tmp_path / "a.json")
        b = self._telemetry(tmp_path / "b.json", throughput_rps=8000.0)
        assert main(["bench-compare", a, b, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["verdict"] == "regress"

    def test_bench_compare_custom_tolerance(self, tmp_path, capsys):
        a = self._telemetry(tmp_path / "a.json")
        b = self._telemetry(tmp_path / "b.json", throughput_rps=8000.0)
        assert main(
            ["bench-compare", a, b, "--throughput-tolerance", "25"]
        ) == 0


class TestRunLedgerCli:
    """The tentpole surface: default-on recording + the runs family."""

    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(irm_trace(600, 50, mean_size=1 << 10, seed=4), path)
        return str(path)

    def _compare(self, trace_file, seed_trace=None):
        return main(
            ["compare", "--trace", seed_trace or trace_file,
             "--policies", "lru,s4lru", "--capacities", "8kb",
             "--window", "150"]
        )

    def test_compare_records_run_and_list_shows_it(
        self, trace_file, capsys, monkeypatch
    ):
        assert self._compare(trace_file) == 0
        err = capsys.readouterr().err
        assert "run ledger: recorded" in err
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "compare" in out
        assert "trace.csv" in out

    def test_ledger_output_stays_off_stdout(self, trace_file, capsys):
        """Stdout is compared across serial/parallel runs elsewhere; the
        ledger must only ever talk on stderr."""
        assert self._compare(trace_file) == 0
        captured = capsys.readouterr()
        assert "run ledger" not in captured.out
        assert "run ledger" in captured.err

    def test_no_ledger_opt_out(self, trace_file, capsys, tmp_path):
        assert main(
            ["compare", "--trace", trace_file, "--policies", "lru",
             "--capacities", "8kb", "--no-ledger"]
        ) == 0
        assert "run ledger" not in capsys.readouterr().err
        assert main(["runs", "list"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_show_and_diff_identical_runs(self, trace_file, capsys):
        assert self._compare(trace_file) == 0
        assert self._compare(trace_file) == 0
        capsys.readouterr()
        assert main(["runs", "show", "latest"]) == 0
        shown = capsys.readouterr().out
        assert "lru" in shown and "s4lru" in shown
        assert main(["runs", "diff", "latest~1", "latest"]) == 0
        assert "verdict: IDENTICAL" in capsys.readouterr().out

    def test_diff_different_seeds_is_nonzero_per_window(
        self, trace_file, tmp_path, capsys
    ):
        other = tmp_path / "other.csv"
        save_trace_csv(irm_trace(600, 50, mean_size=1 << 10, seed=9), other)
        assert self._compare(trace_file) == 0
        assert self._compare(trace_file, seed_trace=str(other)) == 0
        capsys.readouterr()
        assert main(["runs", "diff", "latest~1", "latest", "--format", "json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["identical"] is False
        assert any(c["windows_differing"] > 0 for c in diff["cells"])

    def test_check_exit_codes_match_bench_compare(
        self, trace_file, tmp_path, capsys
    ):
        assert self._compare(trace_file) == 0
        ok_spec = tmp_path / "ok.json"
        ok_spec.write_text(json.dumps({
            "schema": "repro-slo/1",
            "rules": [{"metric": "object_hit_ratio", "min": 0.0},
                      {"metric": "stalls", "max": 0}],
        }))
        bad_spec = tmp_path / "bad.json"
        bad_spec.write_text(json.dumps({
            "schema": "repro-slo/1",
            "rules": [{"metric": "object_hit_ratio", "min": 0.99}],
        }))
        assert main(["runs", "check", "latest", "--slo", str(ok_spec)]) == 0
        assert "verdict: OK" in capsys.readouterr().out
        assert main(["runs", "check", "latest", "--slo", str(bad_spec)]) == 1
        assert "verdict: VIOLATED" in capsys.readouterr().out
        assert main(
            ["runs", "check", "latest", "--slo", str(bad_spec), "--warn-only"]
        ) == 0

    def test_check_bad_spec_is_a_clean_error(self, trace_file, tmp_path):
        assert self._compare(trace_file) == 0
        spec = tmp_path / "nonsense.json"
        spec.write_text(json.dumps({"schema": "repro-slo/1", "rules": [
            {"metric": "no_such_metric", "max": 1}]}))
        with pytest.raises(SystemExit, match="unknown SLO metric"):
            main(["runs", "check", "latest", "--slo", str(spec)])

    def test_export_csv(self, trace_file, tmp_path, capsys):
        assert self._compare(trace_file) == 0
        out = tmp_path / "series.csv"
        assert main(["runs", "export", "latest", "--csv", str(out)]) == 0
        assert "window rows" in capsys.readouterr().out
        header = out.read_text().splitlines()[0]
        assert header.startswith("cell,policy,capacity,window,requests")

    def test_gc_keeps_newest(self, trace_file, capsys):
        for _ in range(3):
            assert self._compare(trace_file) == 0
        capsys.readouterr()
        assert main(["runs", "gc", "--keep", "1"]) == 0
        assert "pruned 2 run(s), kept 1" in capsys.readouterr().out

    def test_unknown_ref_is_a_clean_error(self, trace_file):
        assert self._compare(trace_file) == 0
        with pytest.raises(SystemExit, match="no run matching"):
            main(["runs", "show", "zzz"])

    def test_simulate_records_too(self, trace_file, capsys):
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "8kb", "--window", "150"]
        ) == 0
        assert "run ledger: recorded" in capsys.readouterr().err
        assert main(["runs", "list"]) == 0
        assert "simulate" in capsys.readouterr().out


class TestBenchCompareLedger:
    """bench-compare --ledger: rolling-history regression trends."""

    def _payload(self, throughput, run_id):
        return {
            "schema": "repro-bench/2",
            "name": "throughput",
            "scale": 0.01,
            "seed": 1,
            "jobs": 0,
            "run_id": run_id,
            "git_rev": "deadbeef",
            "config_digest": "abcd1234abcd1234",
            "wall_seconds": 2.0,
            "requests": 20000,
            "throughput_rps": throughput,
            "peak_rss_bytes": 100 << 20,
            "hit_ratios": {"lru@1000": 0.40},
            "obs_overhead_percent": None,
            "extra": {},
        }

    @pytest.fixture()
    def ledger_with_history(self, tmp_path):
        from repro.obs import RunLedger, RunRecord

        root = tmp_path / "bench-ledger"
        ledger = RunLedger(root)
        for i, tput in enumerate((980.0, 1000.0, 1020.0)):
            payload = self._payload(tput, f"hist-{i}")
            ledger.record(
                RunRecord(
                    command="bench", name="throughput",
                    run_id=payload["run_id"], metrics=payload,
                )
            )
        return root

    def test_injected_regression_flagged(
        self, tmp_path, ledger_with_history, capsys
    ):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(self._payload(500.0, "candidate")))
        assert main(
            ["bench-compare", str(bad), "--ledger", str(ledger_with_history)]
        ) == 1
        out = capsys.readouterr().out
        assert "median of 3 prior runs" in out
        assert "REGRESS" in out

    def test_healthy_run_passes(self, tmp_path, ledger_with_history, capsys):
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(self._payload(1010.0, "candidate")))
        assert main(
            ["bench-compare", str(good), "--ledger", str(ledger_with_history)]
        ) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_candidate_never_its_own_history(
        self, tmp_path, ledger_with_history
    ):
        """A payload already recorded in the ledger is excluded from the
        history it is compared against."""
        from repro.obs import RunLedger, RunRecord

        payload = self._payload(500.0, "candidate")
        RunLedger(ledger_with_history).record(
            RunRecord(command="bench", name="throughput",
                      run_id="candidate", metrics=payload)
        )
        current = tmp_path / "BENCH_current.json"
        current.write_text(json.dumps(payload))
        assert main(
            ["bench-compare", str(current), "--ledger",
             str(ledger_with_history)]
        ) == 1  # still judged against the three healthy runs

    def test_ledger_mode_requires_one_file(self, tmp_path, ledger_with_history):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(self._payload(1000.0, "a")))
        b = tmp_path / "b.json"
        b.write_text(json.dumps(self._payload(1000.0, "b")))
        with pytest.raises(SystemExit, match="exactly one"):
            main(["bench-compare", str(a), str(b), "--ledger",
                  str(ledger_with_history)])

    def test_empty_history_is_a_clean_error(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(self._payload(1000.0, "a")))
        with pytest.raises(SystemExit, match="no prior"):
            main(["bench-compare", str(a), "--ledger",
                  str(tmp_path / "empty-ledger")])


class TestTimelineTracingCli:
    """--trace-out span capture, Chrome export, and `repro timeline`."""

    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(irm_trace(400, 40, mean_size=1 << 12, seed=1), path)
        return str(path)

    def test_simulate_trace_out_writes_chrome_json(
        self, trace_file, tmp_path, capsys
    ):
        out = tmp_path / "trace.json"
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "64KB", "--trace-out", str(out)]
        ) == 0
        assert "wrote timeline trace" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert {"ph", "ts", "pid", "name"} <= set(event)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "cli.simulate" in names
        assert "sim.replay" in names

    def test_compare_parallel_trace_out_has_worker_lanes(
        self, trace_file, tmp_path
    ):
        out = tmp_path / "trace.json"
        assert main(
            ["compare", "--trace", trace_file, "--policies", "lru,gdsf",
             "--capacities", "32KB", "64KB", "--jobs", "2",
             "--trace-out", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        lanes = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "driver" in lanes
        assert any(name.startswith("worker") for name in lanes)
        # One X event per sweep cell: 2 policies x 2 capacities.
        cells = [e for e in events if e["ph"] == "X" and e.get("cat") == "cell"]
        assert len(cells) == 4

    def test_timeline_renders_recorded_run(self, trace_file, tmp_path, capsys):
        assert main(
            ["compare", "--trace", trace_file, "--policies", "lru,s4lru",
             "--capacities", "32KB", "--jobs", "2",
             "--trace-out", str(tmp_path / "t.json")]
        ) == 0
        capsys.readouterr()
        assert main(["runs", "show", "latest"]) == 0
        assert "spans" in capsys.readouterr().out
        assert main(["timeline", "latest"]) == 0
        report = capsys.readouterr().out
        assert "phase self-time breakdown" in report
        assert "critical path" in report
        assert "worker utilization" in report
        assert "stragglers" in report

    def test_timeline_json_format(self, trace_file, tmp_path, capsys):
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "64KB", "--trace-out", str(tmp_path / "t.json")]
        ) == 0
        capsys.readouterr()
        assert main(["timeline", "latest", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["span_count"] > 0
        assert payload["phases"]
        assert payload["critical_path"]

    def test_timeline_on_untraced_run_reports_cleanly(self, trace_file, capsys):
        # A run without a spans sidecar is a normal state, not an error:
        # the command says so and exits 0 (both formats).
        assert main(
            ["compare", "--trace", trace_file, "--policies", "lru",
             "--capacities", "32KB"]
        ) == 0
        capsys.readouterr()
        assert main(["timeline", "latest"]) == 0
        out = capsys.readouterr().out
        assert "recorded no spans" in out
        assert "--trace-out" in out
        assert main(["timeline", "latest", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 0

    def test_trace_out_does_not_change_results(self, trace_file, tmp_path, capsys):
        args = ["compare", "--trace", trace_file, "--policies", "lru,gdsf",
                "--capacities", "64KB"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main([*args, "--trace-out", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out

        def strip(text):
            return [
                [c for i, c in enumerate(line.split()) if i != 8]
                for line in text.splitlines()
                if line and not line.startswith("wrote timeline")
            ]

        assert strip(plain) == strip(traced)
