"""Command-line interface: size parsing, trace IO, subcommand wiring."""

import argparse

import pytest

from repro.cli import build_parser, load_any_trace, main, parse_size
from repro.traces.loader import save_trace_csv, save_trace_webcachesim
from repro.traces.synthetic import irm_trace


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("1kb", 1 << 10),
            ("512MB", 512 << 20),
            ("4GB", 4 << 30),
            ("1.5gb", int(1.5 * (1 << 30))),
            ("1tb", 1 << 40),
            ("100 b", 100),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["abc", "4XB", ""])
    def test_invalid(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size(text)

    def test_minimum_one_byte(self):
        assert parse_size("0") == 1


class TestLoadAnyTrace:
    def test_dispatch_by_extension(self, tmp_path):
        trace = irm_trace(50, 10, seed=0)
        csv_path = tmp_path / "t.csv"
        wcs_path = tmp_path / "t.tr"
        save_trace_csv(trace, csv_path)
        save_trace_webcachesim(trace, wcs_path)
        assert len(load_any_trace(str(csv_path))) == 50
        assert len(load_any_trace(str(wcs_path))) == 50

    def test_missing_file(self):
        with pytest.raises(SystemExit, match="does not exist"):
            load_any_trace("/nonexistent/file.csv")


class TestSubcommands:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(irm_trace(400, 40, mean_size=1 << 12, seed=1), path)
        return str(path)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_generate_and_summarize(self, tmp_path, capsys):
        out = str(tmp_path / "gen.csv")
        assert main(
            ["trace", "generate", "--spec", "cdn-c", "--scale", "0.005",
             "-o", out]
        ) == 0
        assert main(["trace", "summarize", out]) == 0
        captured = capsys.readouterr().out
        assert "Unique contents" in captured

    def test_trace_convert(self, trace_file, tmp_path, capsys):
        out = str(tmp_path / "out.tr")
        assert main(["trace", "convert", trace_file, out]) == 0
        assert "webcachesim" in capsys.readouterr().out

    def test_simulate(self, trace_file, capsys):
        assert main(
            ["simulate", "--trace", trace_file, "--policy", "lru",
             "--capacity", "1MB", "--window", "100"]
        ) == 0
        captured = capsys.readouterr().out
        assert "object_hit_ratio" in captured
        assert "per-window hit ratio" in captured

    def test_compare(self, trace_file, capsys):
        assert main(
            ["compare", "--trace", trace_file, "--policies", "lru,gdsf",
             "--capacities", "512KB", "1MB"]
        ) == 0
        captured = capsys.readouterr().out
        assert "gdsf" in captured and "lru" in captured

    def test_compare_parallel_jobs_matches_serial(self, trace_file, capsys):
        args = ["compare", "--trace", trace_file, "--policies", "lru,gdsf",
                "--capacities", "512KB", "1MB"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main([*args, "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # Identical tables modulo the wall-clock runtime column.
        strip = lambda text: [
            [c for i, c in enumerate(line.split()) if i != 8]
            for line in text.splitlines() if line
        ]
        assert strip(serial_out) == strip(parallel_out)

    def test_bounds(self, trace_file, capsys):
        assert main(
            ["bounds", "--trace", trace_file, "--capacity", "1MB"]
        ) == 0
        captured = capsys.readouterr().out
        for name in ("infinite-cap", "pfoo-u", "hro", "belady-size", "pfoo-l"):
            assert name in captured

    def test_simulate_rejects_unknown_policy(self, trace_file):
        with pytest.raises(SystemExit):
            main(["simulate", "--trace", trace_file, "--policy", "bogus",
                  "--capacity", "1MB"])

    def test_prototype_caffeine(self, capsys):
        assert main(
            ["prototype", "--spec", "cdn-c", "--system", "caffeine",
             "--scale", "0.003"]
        ) == 0
        captured = capsys.readouterr().out
        assert "caffeine" in captured and "lhr" in captured

    def test_curve(self, trace_file, capsys):
        assert main(
            ["curve", "--trace", trace_file, "--points", "6",
             "--target", "0.2"]
        ) == 0
        captured = capsys.readouterr().out
        assert "object hit" in captured
        assert "target 20%" in captured
