"""Density/utility-based policies: LHD, Hyperbolic, SecondHit, GDS."""

import pytest

from repro.policies.classic import GdsCache, LruCache
from repro.policies.hyperbolic import HyperbolicCache
from repro.policies.lhd import LhdCache
from repro.policies.secondhit import SecondHitCache
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def req(obj_id, time, size=10):
    return Request(time=time, obj_id=obj_id, size=size)


class TestLhd:
    def test_basic_operation(self):
        cache = LhdCache(100, seed=0)
        assert cache.request(req(1, 0.0)) is False
        assert cache.request(req(1, 1.0)) is True

    def test_hit_density_decreases_with_size(self):
        cache = LhdCache(10_000, seed=0)
        cache.request(req(1, 0.0, size=10))
        cache.request(req(2, 0.0, size=1000))
        assert cache.hit_density(1, 5.0) > cache.hit_density(2, 5.0)

    def test_class_learning_from_hits(self):
        cache = LhdCache(10_000, seed=0)
        for t in range(10):
            cache.request(req(1, float(t)))
        cls = cache._classes[cache._class_of(1)]
        assert cls.hit_probability > 0.5
        assert cls.expected_time == pytest.approx(1.0, rel=0.2)

    def test_beats_lru_on_zipf(self):
        trace = irm_trace(15_000, 300, alpha=1.0, mean_size=1 << 14, seed=41)
        capacity = int(0.05 * trace.unique_bytes())
        lhd = LhdCache(capacity, seed=1)
        lru = LruCache(capacity)
        lhd.process(trace)
        lru.process(trace)
        assert lhd.object_hit_ratio > lru.object_hit_ratio

    def test_capacity_respected(self, var_size_trace):
        cache = LhdCache(1 << 20, seed=2)
        for request in var_size_trace:
            cache.request(request)
            assert cache.used_bytes <= cache.capacity


class TestHyperbolic:
    def test_priority_decays_with_residence(self):
        cache = HyperbolicCache(1000, seed=0)
        cache.request(req(1, 0.0))
        early = cache.priority(1, 1.0)
        late = cache.priority(1, 100.0)
        assert late < early

    def test_priority_grows_with_hits(self):
        cache = HyperbolicCache(1000, seed=0)
        cache.request(req(1, 0.0))
        before = cache.priority(1, 10.0)
        cache.request(req(1, 5.0))
        after = cache.priority(1, 10.0)
        assert after > before

    def test_size_aware_flag(self):
        aware = HyperbolicCache(10_000, size_aware=True, seed=0)
        blind = HyperbolicCache(10_000, size_aware=False, seed=0)
        for cache in (aware, blind):
            cache.request(req(1, 0.0, size=100))
        assert aware.priority(1, 1.0) == pytest.approx(
            blind.priority(1, 1.0) / 100
        )

    def test_burst_protection_vs_lru(self):
        # A burst-hit object should outlive a merely-recent one.
        cache = HyperbolicCache(30, num_candidates=64, seed=0)
        for t in range(5):
            cache.request(req(1, float(t)))  # bursty
        cache.request(req(2, 5.0))
        cache.request(req(3, 6.0))
        cache.request(req(4, 7.0))  # eviction needed
        assert cache.contains(1)

    def test_capacity_respected(self, var_size_trace):
        cache = HyperbolicCache(1 << 20, seed=3)
        for request in var_size_trace:
            cache.request(request)
            assert cache.used_bytes <= cache.capacity


class TestSecondHit:
    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            SecondHitCache(100, history_items=0)

    def test_first_request_not_admitted(self):
        cache = SecondHitCache(100)
        cache.request(req(1, 0.0))
        assert not cache.contains(1)

    def test_second_request_admitted(self):
        cache = SecondHitCache(100)
        cache.request(req(1, 0.0))
        cache.request(req(1, 1.0))
        assert cache.contains(1)

    def test_horizon_expires_history(self):
        cache = SecondHitCache(100, horizon_seconds=10.0)
        cache.request(req(1, 0.0))
        cache.request(req(1, 50.0))  # first sighting expired
        assert not cache.contains(1)
        cache.request(req(1, 55.0))  # within horizon of the 50.0 sighting
        assert cache.contains(1)

    def test_history_table_bounded(self):
        cache = SecondHitCache(1000, history_items=5)
        for i in range(20):
            cache.request(req(i, float(i)))
        assert len(cache._seen) <= 5

    def test_filters_one_hit_wonders(self, production_trace, production_capacity):
        filtered = SecondHitCache(production_capacity)
        unfiltered = LruCache(production_capacity)
        filtered.process(production_trace)
        unfiltered.process(production_trace)
        # Admitting only re-requested contents means far fewer admissions.
        assert filtered.admissions < 0.7 * unfiltered.admissions


class TestGds:
    def test_size_drives_eviction(self):
        cache = GdsCache(100)
        cache.request(req(1, 0.0, size=80))
        cache.request(req(2, 1.0, size=20))
        cache.request(req(3, 2.0, size=50))  # must evict the big one
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_frequency_blind(self):
        cache = GdsCache(100)
        for t in range(10):
            cache.request(req(1, float(t), size=80))  # popular but big
        cache.request(req(2, 20.0, size=20))
        cache.request(req(3, 21.0, size=50))
        # Unlike GDSF, popularity does not save the large object.
        assert not cache.contains(1)
