"""Admission-focused policies: AdaptSize, B-LRU, TinyLFU, W-TinyLFU, ARC."""

import pytest

from repro.policies.adaptsize import AdaptSizeCache
from repro.policies.arc import ArcCache
from repro.policies.blru import BloomLruCache
from repro.policies.tinylfu import TinyLfuCache, WTinyLfuCache
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def req(obj_id, size=10, time=0.0):
    return Request(time=time, obj_id=obj_id, size=size)


class TestAdaptSize:
    def test_rejects_bad_tuning_interval(self):
        with pytest.raises(ValueError):
            AdaptSizeCache(100, tuning_requests=0)

    def test_small_objects_favoured(self):
        cache = AdaptSizeCache(10_000, seed=0)
        small_admitted = sum(
            1 for i in range(200) if cache.request(req(1000 + i, size=1)) or cache.contains(1000 + i)
        )
        large_admitted = sum(
            1
            for i in range(200)
            if cache.request(req(5000 + i, size=9_000)) or cache.contains(5000 + i)
        )
        assert small_admitted > large_admitted

    def test_threshold_tuning_runs(self):
        trace = irm_trace(3000, 100, seed=1)
        cache = AdaptSizeCache(
            int(0.1 * trace.unique_bytes()), tuning_requests=1000, seed=1
        )
        initial = cache.threshold
        cache.process(trace)
        assert cache.threshold != initial

    def test_eviction_is_lru(self):
        cache = AdaptSizeCache(30, seed=0)
        cache._threshold = 1e12  # effectively admit-all
        cache.request(req(1, time=0))
        cache.request(req(2, time=1))
        cache.request(req(3, time=2))
        cache.request(req(1, time=3))
        cache.request(req(4, time=4))
        assert cache.contains(1)
        assert not cache.contains(2)


class TestBloomLru:
    def test_one_hit_wonder_rejected(self):
        cache = BloomLruCache(100)
        cache.request(req(1))
        assert not cache.contains(1)

    def test_second_request_admitted(self):
        cache = BloomLruCache(100)
        cache.request(req(1, time=0))
        cache.request(req(1, time=1))
        assert cache.contains(1)
        assert cache.request(req(1, time=2)) is True

    def test_rotation_forgets_distant_history(self):
        cache = BloomLruCache(1000, rotation_items=10)
        cache.request(req(1, time=0))
        # Flood with enough distinct ids to rotate twice.
        for i in range(100, 125):
            cache.request(Request(time=float(i), obj_id=i, size=1))
        # Content 1's record has been rotated out of both generations.
        assert not cache._seen_before(1)

    def test_rejects_bad_rotation(self):
        with pytest.raises(ValueError):
            BloomLruCache(10, rotation_items=0)

    def test_metadata_includes_filters(self):
        cache = BloomLruCache(100, rotation_items=1000)
        assert cache.metadata_bytes() > 0


class TestTinyLfu:
    def test_admits_while_space_free(self):
        cache = TinyLfuCache(100)
        cache.request(req(1, size=40))
        assert cache.contains(1)

    def test_frequency_duel_blocks_cold_content(self):
        cache = TinyLfuCache(30)
        for t in range(5):
            cache.request(req(1, time=float(t)))
            cache.request(req(2, time=float(t) + 0.5))
            cache.request(req(3, time=float(t) + 0.7))
        # Cache full of warm objects; a cold newcomer loses the duel.
        cache.request(req(9, time=100.0))
        assert not cache.contains(9)
        assert cache.contains(1)

    def test_hot_newcomer_wins_duel(self):
        cache = TinyLfuCache(30)
        cache.request(req(1, time=0))
        cache.request(req(2, time=1))
        cache.request(req(3, time=2))
        for t in range(6):
            cache.request(req(9, time=10.0 + t))  # builds sketch frequency
        assert cache.contains(9)


class TestWTinyLfu:
    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5])
    def test_rejects_bad_window_fraction(self, fraction):
        with pytest.raises(ValueError):
            WTinyLfuCache(100, window_fraction=fraction)

    def test_rejects_bad_protected_fraction(self):
        with pytest.raises(ValueError):
            WTinyLfuCache(100, protected_fraction=1.5)

    def test_admits_into_window_when_space(self):
        cache = WTinyLfuCache(1000)
        cache.request(req(1, size=5))
        assert cache.contains(1)

    def test_probation_hit_promotes_to_protected(self):
        cache = WTinyLfuCache(1000, window_fraction=0.01)
        cache.request(req(1, size=300, time=0))
        cache.request(req(2, size=300, time=1))  # spills 1 to probation
        assert 1 in cache._probation
        cache.request(req(1, size=300, time=2))
        assert 1 in cache._protected

    def test_capacity_never_exceeded(self, var_size_trace):
        cache = WTinyLfuCache(1 << 20)
        for request in var_size_trace:
            cache.request(request)
            assert cache.used_bytes <= cache.capacity

    def test_beats_lru_on_zipf(self):
        from repro.policies.classic import LruCache

        trace = irm_trace(20_000, 500, alpha=1.0, mean_size=1 << 16, seed=4)
        capacity = int(0.05 * trace.unique_bytes())
        wtlfu = WTinyLfuCache(capacity)
        lru = LruCache(capacity)
        wtlfu.process(trace)
        lru.process(trace)
        assert wtlfu.object_hit_ratio > lru.object_hit_ratio


class TestArc:
    def test_t1_hit_promotes_to_t2(self):
        cache = ArcCache(100)
        cache.request(req(1, time=0))
        assert 1 in cache._t1
        cache.request(req(1, time=1))
        assert 1 in cache._t2
        assert 1 not in cache._t1

    def test_ghost_hit_adapts_target(self):
        cache = ArcCache(30)
        cache.request(req(1, time=0))
        cache.request(req(2, time=1))
        cache.request(req(3, time=2))
        cache.request(req(4, time=3))  # evicts 1 into B1
        assert 1 in cache._b1
        p_before = cache._p
        cache.request(req(1, time=4))  # ghost hit in B1 grows p
        assert cache._p > p_before

    def test_capacity_respected(self, var_size_trace):
        cache = ArcCache(1 << 20)
        for request in var_size_trace:
            cache.request(request)
            assert cache.used_bytes <= cache.capacity

    def test_scan_resistance_vs_lru(self):
        from repro.policies.classic import LruCache

        # A hot working set + one-off scan items: ARC should protect the
        # hot set better than LRU.
        requests = []
        t = 0.0
        scan_id = 1000
        for round_index in range(300):
            for hot in range(5):
                requests.append(req(hot, size=10, time=t))
                t += 1
            requests.append(req(scan_id, size=10, time=t))
            scan_id += 1
            t += 1
        arc = ArcCache(60)
        lru = LruCache(60)
        for r in requests:
            arc.request(r)
            lru.request(r)
        assert arc.hits >= lru.hits
