"""Cross-policy invariants, property-based.

Every registered policy, whatever its internals, must maintain the same
cache-state contract: capacity never exceeded, byte accounting exact,
hit counters consistent, and a hit only ever served for a cached object.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies import POLICY_REGISTRY, make_policy
from repro.traces.request import Request

#: Policies cheap enough to run under hypothesis.
FAST_POLICIES = [
    "fifo",
    "random",
    "lru",
    "lru-2",
    "lru-4",
    "lfu",
    "lfu-da",
    "gdsf",
    "arc",
    "adaptsize",
    "b-lru",
    "tinylfu",
    "w-tinylfu",
    "hawkeye",
    "gds",
    "s4lru",
    "lhd",
    "hyperbolic",
    "secondhit",
    "no-cache",
]

ALL_POLICIES = sorted(POLICY_REGISTRY)


request_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=25),  # obj_id
        st.integers(min_value=1, max_value=40),  # size
    ),
    min_size=1,
    max_size=120,
)


def build_trace(rows):
    # Sizes must be consistent per object: key size off the id.
    sizes = {}
    requests = []
    for i, (obj_id, size) in enumerate(rows):
        size = sizes.setdefault(obj_id, size)
        requests.append(Request(time=float(i), obj_id=obj_id, size=size, index=i))
    return requests


@pytest.mark.parametrize("name", FAST_POLICIES)
@settings(max_examples=25, deadline=None)
@given(rows=request_lists, capacity=st.integers(min_value=10, max_value=200))
def test_property_state_contract(name, rows, capacity):
    policy = make_policy(name, capacity)
    requests = build_trace(rows)
    hits = 0
    for request in requests:
        was_cached = policy.contains(request.obj_id)
        hit = policy.request(request)
        assert hit == was_cached, "a hit must be served iff the object was cached"
        hits += hit
        assert policy.used_bytes <= capacity
        assert policy.used_bytes == sum(policy.cached_objects().values())
        for obj_id, size in policy.cached_objects().items():
            assert size <= capacity
    assert policy.hits == hits
    assert policy.hits + policy.misses == len(requests)
    assert policy.admissions - policy.evictions == policy.num_objects


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_smoke_on_production_slice(name, production_trace, production_capacity):
    """Every registered policy survives a real trace slice within budget."""
    kwargs = {}
    if name == "lrb":
        kwargs = {"training_batch": 1500, "max_training_data": 4000}
    if name == "lfo":
        kwargs = {"window_requests": 1500}
    policy = make_policy(name, production_capacity, **kwargs)
    policy.process(production_trace[:2500])
    assert policy.used_bytes <= production_capacity
    assert 0.0 <= policy.object_hit_ratio <= 1.0
    assert policy.metadata_bytes() >= 0


@pytest.mark.parametrize("name", FAST_POLICIES)
def test_metadata_overhead_small_vs_capacity(name, production_trace, production_capacity):
    """Section 7.2: metadata should be a small fraction of cache size."""
    policy = make_policy(name, production_capacity)
    policy.process(production_trace[:2000])
    assert policy.metadata_bytes() < 0.25 * production_capacity


@pytest.mark.parametrize("name", ["lru", "lfu-da", "gdsf", "arc", "w-tinylfu"])
def test_larger_cache_never_hurts_much(name, var_size_trace):
    """Hit ratio should be (weakly) monotone in capacity on IRM traces."""
    small = make_policy(name, 1 << 19)
    large = make_policy(name, 1 << 22)
    small.process(var_size_trace)
    large.process(var_size_trace)
    assert large.object_hit_ratio >= small.object_hit_ratio - 0.02


def test_registry_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown policy"):
        make_policy("nonexistent", 100)


def test_registry_names_lowercase():
    assert all(name == name.lower() for name in POLICY_REGISTRY)


def test_sota_policies_all_registered():
    from repro.policies import SOTA_POLICIES

    assert set(SOTA_POLICIES) <= set(POLICY_REGISTRY)
    assert len(SOTA_POLICIES) == 7  # the paper's seven best-performing
