"""CachePolicy framework: admission flow, eviction loop, accounting."""

import pytest

from repro.policies.base import CachePolicy, NoCache
from repro.policies.classic import LruCache
from repro.traces.request import Request


def req(obj_id, size=10, time=0.0):
    return Request(time=time, obj_id=obj_id, size=size)


class TestConstruction:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)
        with pytest.raises(ValueError):
            LruCache(-5)


class TestAdmissionFlow:
    def test_miss_then_hit(self):
        cache = LruCache(100)
        assert cache.request(req(1)) is False
        assert cache.request(req(1)) is True

    def test_object_larger_than_cache_never_admitted(self):
        cache = LruCache(100)
        cache.request(req(1, size=200))
        assert not cache.contains(1)
        assert cache.used_bytes == 0
        # And the refusal does not evict anything already cached.
        cache.request(req(2, size=50))
        cache.request(req(3, size=500))
        assert cache.contains(2)

    def test_object_exactly_cache_size_admitted(self):
        cache = LruCache(100)
        cache.request(req(1, size=100))
        assert cache.contains(1)
        assert cache.used_bytes == 100

    def test_eviction_frees_enough_space(self):
        cache = LruCache(100)
        for obj_id in range(10):
            cache.request(req(obj_id, size=10))
        assert cache.used_bytes == 100
        cache.request(req(99, size=35))
        assert cache.contains(99)
        assert cache.used_bytes <= 100

    def test_byte_accounting_consistency(self):
        cache = LruCache(64)
        sizes = [10, 20, 30, 40, 10, 20]
        for i, size in enumerate(sizes):
            cache.request(req(i, size=size))
        assert cache.used_bytes == sum(
            cache.cached_objects().values()
        )
        assert cache.used_bytes <= 64


class TestCounters:
    def test_hit_miss_counts(self):
        cache = LruCache(100)
        cache.request(req(1))
        cache.request(req(1))
        cache.request(req(2))
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.object_hit_ratio == pytest.approx(1 / 3)

    def test_byte_hit_ratio(self):
        cache = LruCache(100)
        cache.request(req(1, size=30))
        cache.request(req(1, size=30))
        cache.request(req(2, size=40))
        assert cache.hit_bytes == 30
        assert cache.miss_bytes == 70
        assert cache.byte_hit_ratio == pytest.approx(0.3)

    def test_zero_requests(self):
        cache = LruCache(100)
        assert cache.object_hit_ratio == 0.0
        assert cache.byte_hit_ratio == 0.0

    def test_admission_and_eviction_counters(self):
        cache = LruCache(20)
        cache.request(req(1, size=10))
        cache.request(req(2, size=10))
        cache.request(req(3, size=10))  # evicts 1
        assert cache.admissions == 3
        assert cache.evictions == 1

    def test_process_iterates(self, tiny_trace):
        cache = LruCache(1000)
        cache.process(tiny_trace)
        assert cache.hits + cache.misses == len(tiny_trace)


class TestNoCache:
    def test_never_stores(self, tiny_trace):
        cache = NoCache(1000)
        cache.process(tiny_trace)
        assert cache.hits == 0
        assert cache.num_objects == 0
        assert cache.used_bytes == 0

    def test_metadata_overhead_zero_objects(self):
        assert NoCache(10).metadata_bytes() == 0


class TestVictimContract:
    def test_bad_victim_detected(self):
        class BrokenPolicy(CachePolicy):
            name = "broken"

            def _select_victim(self, incoming):
                return 424242  # not cached

        cache = BrokenPolicy(10)
        cache.request(req(1, size=10))
        with pytest.raises(RuntimeError, match="victim"):
            cache.request(req(2, size=10))
