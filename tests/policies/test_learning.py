"""Learning-based baselines: Hawkeye, LRB, LFO."""

from repro.policies.hawkeye import HawkeyeCache, _OptGen
from repro.policies.lfo import LfoCache
from repro.policies.lrb import LrbCache
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def req(obj_id, size=10, time=0.0, index=-1):
    return Request(time=time, obj_id=obj_id, size=size, index=index)


class TestOptGen:
    def test_first_request_has_no_verdict(self):
        optgen = _OptGen(capacity=100, num_buckets=8, requests_per_bucket=1)
        assert optgen.record(req(1, time=0)) is None

    def test_reuse_within_capacity_is_opt_hit(self):
        optgen = _OptGen(capacity=100, num_buckets=8, requests_per_bucket=1)
        optgen.record(req(1, time=0))
        assert optgen.record(req(1, time=1)) is True

    def test_overflowing_interval_is_opt_miss(self):
        optgen = _OptGen(capacity=25, num_buckets=8, requests_per_bucket=1)
        optgen.record(req(1, size=10, time=0))
        optgen.record(req(2, size=10, time=1))
        optgen.record(req(3, size=10, time=2))
        # All three intervals overlap; the third reuse cannot fit.
        assert optgen.record(req(1, size=10, time=3)) is True
        assert optgen.record(req(2, size=10, time=4)) is True
        assert optgen.record(req(3, size=10, time=5)) is False

    def test_reuse_beyond_history_has_no_verdict(self):
        optgen = _OptGen(capacity=100, num_buckets=4, requests_per_bucket=1)
        optgen.record(req(1, time=0))
        for i in range(2, 8):
            optgen.record(req(i, time=float(i)))
        assert optgen.record(req(1, time=9)) is None

    def test_prune_drops_stale_entries(self):
        optgen = _OptGen(capacity=100, num_buckets=2, requests_per_bucket=1)
        optgen.record(req(1, time=0))
        for i in range(2, 40):
            optgen.record(req(i, time=float(i)))
        optgen.prune(horizon=2)
        assert 1 not in optgen._last_bucket


class TestHawkeye:
    def test_averse_content_denied_admission(self):
        cache = HawkeyeCache(100, num_buckets=8, requests_per_bucket=1)
        slot = cache._slot(5)
        cache._counters[slot] = 0  # force averse prediction
        cache.request(req(5))
        assert not cache.contains(5)

    def test_friendly_by_default(self):
        cache = HawkeyeCache(100)
        cache.request(req(1))
        assert cache.contains(1)

    def test_averse_evicted_before_friendly(self):
        cache = HawkeyeCache(30, num_buckets=8, requests_per_bucket=1)
        cache.request(req(1, time=0))
        cache.request(req(2, time=1))
        cache.request(req(3, time=2))
        # Make content 2 averse and re-place it.
        cache._counters[cache._slot(2)] = 0
        cache._place(2)
        cache.request(req(4, time=3))
        assert not cache.contains(2)
        assert cache.contains(1) and cache.contains(3)

    def test_training_moves_counters(self):
        cache = HawkeyeCache(1000, num_buckets=16, requests_per_bucket=1)
        start = cache._counters.get(cache._slot(1), cache._FRIENDLY_THRESHOLD)
        for t in range(6):
            cache.request(req(1, time=float(t)))
        assert cache._counters[cache._slot(1)] > start

    def test_runs_clean_on_real_trace(self, production_trace, production_capacity):
        cache = HawkeyeCache(production_capacity)
        cache.process(production_trace)
        assert 0.0 < cache.object_hit_ratio < 1.0
        assert cache.used_bytes <= cache.capacity


class TestLrb:
    def test_admits_everything_that_fits(self):
        cache = LrbCache(100, seed=0)
        cache.request(req(1, size=40))
        assert cache.contains(1)

    def test_pre_model_eviction_is_lru_like(self):
        cache = LrbCache(30, seed=0)
        cache.request(req(1, time=0, index=0))
        cache.request(req(2, time=1, index=1))
        cache.request(req(3, time=2, index=2))
        cache.request(req(1, time=3, index=3))  # refresh 1
        cache.request(req(4, time=4, index=4))  # evicts 2 (oldest access)
        assert not cache.contains(2)
        assert cache.contains(1)

    def test_training_fires_after_batch(self):
        trace = irm_trace(6000, 100, mean_size=1 << 14, seed=2)
        cache = LrbCache(
            int(0.2 * trace.unique_bytes()),
            training_batch=1000,
            max_training_data=4000,
            seed=2,
        )
        cache.process(trace)
        assert cache.trainings >= 1

    def test_training_data_bounded(self):
        trace = irm_trace(4000, 50, mean_size=1 << 14, seed=3)
        cache = LrbCache(
            int(0.2 * trace.unique_bytes()),
            training_batch=500,
            max_training_data=1000,
            seed=3,
        )
        cache.process(trace)
        assert len(cache._train_features) <= 1000

    def test_capacity_respected_on_real_trace(self, production_trace):
        capacity = int(0.03 * production_trace.unique_bytes())
        cache = LrbCache(capacity, training_batch=2000, seed=1)
        for request in production_trace:
            cache.request(request)
        assert cache.used_bytes <= capacity

    def test_memory_window_override(self):
        cache = LrbCache(100, memory_window=50.0)
        assert cache._window(1e9) == 50.0


class TestLfo:
    def test_admit_all_before_first_model(self):
        cache = LfoCache(100, window_requests=1000)
        cache.request(req(1))
        assert cache.contains(1)

    def test_model_trained_after_window(self):
        trace = irm_trace(3000, 80, mean_size=1 << 14, seed=4)
        cache = LfoCache(
            int(0.2 * trace.unique_bytes()), window_requests=1000, seed=4
        )
        cache.process(trace)
        assert cache._model is not None

    def test_metadata_accounting_positive(self):
        cache = LfoCache(100)
        cache.request(req(1))
        assert cache.metadata_bytes() > 0
