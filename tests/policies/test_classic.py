"""Classic policies: hand-crafted eviction-order scenarios."""

import pytest

from repro.policies.classic import (
    FifoCache,
    GdsfCache,
    LfuCache,
    LfuDaCache,
    LruCache,
    LruKCache,
    RandomCache,
)
from repro.traces.request import Request


def req(obj_id, size=10, time=0.0):
    return Request(time=time, obj_id=obj_id, size=size)


class TestFifo:
    def test_evicts_insertion_order_ignoring_hits(self):
        cache = FifoCache(30)
        cache.request(req(1, time=0))
        cache.request(req(2, time=1))
        cache.request(req(3, time=2))
        cache.request(req(1, time=3))  # hit must NOT refresh FIFO order
        cache.request(req(4, time=4))  # evicts 1 (oldest inserted)
        assert not cache.contains(1)
        assert cache.contains(2) and cache.contains(3) and cache.contains(4)


class TestLru:
    def test_evicts_least_recently_used(self):
        cache = LruCache(30)
        cache.request(req(1, time=0))
        cache.request(req(2, time=1))
        cache.request(req(3, time=2))
        cache.request(req(1, time=3))  # refresh 1
        cache.request(req(4, time=4))  # evicts 2
        assert cache.contains(1)
        assert not cache.contains(2)

    def test_sequential_scan_thrashes(self):
        # Classic LRU pathology: a cyclic scan over capacity+1 objects
        # yields zero hits.
        cache = LruCache(30)
        hits = 0
        for round_index in range(5):
            for obj_id in range(4):  # 4 objects of size 10 > 30 capacity
                hits += cache.request(req(obj_id, time=round_index * 4 + obj_id))
        assert hits == 0


class TestLruK:
    def test_default_name(self):
        assert LruKCache(100).name == "lru-4"
        assert LruKCache(100, k=2).name == "lru-2"

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            LruKCache(100, k=0)

    def test_underreferenced_evicted_before_fully_referenced(self):
        cache = LruKCache(30, k=2)
        # Content 1 and 2 get 2 references (full history); 3 gets 1.
        cache.request(req(1, time=0))
        cache.request(req(2, time=1))
        cache.request(req(1, time=2))
        cache.request(req(2, time=3))
        cache.request(req(3, time=4))
        cache.request(req(4, time=5))  # needs space: 3 has < k refs
        assert not cache.contains(3)
        assert cache.contains(1) and cache.contains(2)

    def test_among_full_history_evicts_oldest_kth_reference(self):
        cache = LruKCache(20, k=2)
        cache.request(req(1, time=0))
        cache.request(req(2, time=1))
        cache.request(req(1, time=2))   # 1: backward-2 time = 0
        cache.request(req(2, time=10))  # 2: backward-2 time = 1
        cache.request(req(1, time=11))  # 1: backward-2 time = 2
        cache.request(req(3, time=12))  # evict min backward-2 => 2
        assert not cache.contains(2)
        assert cache.contains(1)


class TestLfu:
    def test_evicts_least_frequent(self):
        cache = LfuCache(30)
        cache.request(req(1, time=0))
        cache.request(req(1, time=1))
        cache.request(req(1, time=2))
        cache.request(req(2, time=3))
        cache.request(req(2, time=4))
        cache.request(req(3, time=5))
        cache.request(req(4, time=6))  # evicts 3 (count 1)
        assert not cache.contains(3)
        assert cache.contains(1) and cache.contains(2)

    def test_counts_survive_eviction(self):
        cache = LfuCache(20)
        for _ in range(3):
            cache.request(req(1))
        cache.request(req(2))
        cache.request(req(3))  # evicts 2 (LFU among {1:3, 2:1})
        assert not cache.contains(2)
        # Re-request 2 twice: lifetime count now 3; newcomer 4 loses.
        cache.request(req(2))
        cache.request(req(2))


class TestLfuDa:
    def test_aging_lets_new_content_win(self):
        cache = LfuDaCache(20)
        # Build up an old heavy hitter.
        for t in range(50):
            cache.request(req(1, time=float(t)))
        cache.request(req(2, time=50.0))
        # Evicting 2 (count 1 + age) raises the age factor; fresh contents
        # now compete with the stale heavy hitter.
        cache.request(req(3, time=51.0))
        assert cache._age > 0
        # LFU-DA can eventually displace content 1; plain LFU never would.
        for t in range(52, 80):
            cache.request(req(4, time=float(t)))
        assert cache.contains(4)

    def test_reduces_to_lfu_before_first_eviction(self):
        cache = LfuDaCache(100)
        cache.request(req(1))
        cache.request(req(2))
        assert cache._age == 0.0


class TestGdsf:
    def test_prefers_keeping_small_popular(self):
        cache = GdsfCache(100)
        cache.request(req(1, size=10, time=0))  # small
        cache.request(req(2, size=80, time=1))  # large
        cache.request(req(1, size=10, time=2))
        cache.request(req(3, size=50, time=3))  # must evict: 2 has lowest f/s
        assert cache.contains(1)
        assert not cache.contains(2)

    def test_frequency_beats_size_eventually(self):
        cache = GdsfCache(150)
        for t in range(20):
            cache.request(req(1, size=80, time=float(t)))  # popular large
        cache.request(req(2, size=60, time=21.0))
        cache.request(req(3, size=60, time=22.0))  # evicts 2, not hot 1
        assert cache.contains(1)
        assert not cache.contains(2)


class TestRandom:
    def test_evicts_some_cached_object(self):
        cache = RandomCache(30, seed=0)
        for obj_id in range(3):
            cache.request(req(obj_id, time=float(obj_id)))
        cache.request(req(99, time=4.0))
        assert cache.contains(99)
        assert cache.num_objects == 3
        assert cache.used_bytes <= 30

    def test_deterministic_for_seed(self, var_size_trace):
        def run(seed):
            cache = RandomCache(2 << 20, seed=seed)
            cache.process(var_size_trace)
            return cache.hits

        assert run(1) == run(1)
