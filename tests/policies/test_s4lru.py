"""S4LRU: segment promotion/demotion semantics."""

import pytest

from repro.policies.classic import LruCache
from repro.policies.s4lru import S4LruCache
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def req(obj_id, time, size=10):
    return Request(time=time, obj_id=obj_id, size=size)


class TestConstruction:
    def test_rejects_too_few_segments(self):
        with pytest.raises(ValueError):
            S4LruCache(100, num_segments=1)

    def test_default_four_segments(self):
        assert S4LruCache(400).num_segments == 4


class TestSegmentFlow:
    def test_admission_enters_lowest_segment(self):
        cache = S4LruCache(400)
        cache.request(req(1, 0.0))
        assert cache.segment_of(1) == 0

    def test_hit_promotes_one_level(self):
        cache = S4LruCache(400)
        cache.request(req(1, 0.0))
        cache.request(req(1, 1.0))
        assert cache.segment_of(1) == 1
        cache.request(req(1, 2.0))
        assert cache.segment_of(1) == 2

    def test_top_segment_hits_refresh_in_place(self):
        cache = S4LruCache(400)
        for t in range(10):
            cache.request(req(1, float(t)))
        assert cache.segment_of(1) == 3  # capped at the top

    def test_overflow_demotes_downward(self):
        # Segment capacity = 100/4 = 25 bytes = 2 objects of size 10.
        cache = S4LruCache(100)
        for i in range(1, 4):
            cache.request(req(i, float(i)))
        # Three objects of size 10 overflow segment 0 (25B): the LRU one
        # leaves the cache entirely.
        assert cache.used_bytes <= 100
        levels = [cache.segment_of(i) for i in (1, 2, 3) if cache.contains(i)]
        assert all(level == 0 for level in levels)

    def test_hot_object_survives_scan(self):
        cache = S4LruCache(120)
        # Promote object 1 to the top.
        for t in range(5):
            cache.request(req(1, float(t)))
        # Scan a stream of one-hit objects through the bottom segment.
        for i in range(100, 140):
            cache.request(req(i, float(i)))
        assert cache.contains(1)

    def test_scan_resistance_beats_plain_lru(self):
        # Each round: the 4 hot objects twice back-to-back (the immediate
        # re-reference earns the segment-0 hit that promotes them), then a
        # 40-object scan that flushes plain LRU completely.  From round 2
        # on, S4LRU serves the first hot pass from its upper segments
        # while LRU misses it.
        requests = []
        t = 0.0
        scan_id = 10_000
        for _ in range(60):
            for _ in range(2):
                for hot in range(4):
                    requests.append(req(hot, t))
                    t += 1.0
            for _ in range(40):
                requests.append(req(scan_id, t))
                scan_id += 1
                t += 1.0
        s4 = S4LruCache(160)
        lru = LruCache(160)
        for r in requests:
            s4.request(r)
            lru.request(r)
        assert s4.hits > lru.hits


class TestInvariants:
    def test_capacity_and_level_consistency(self, var_size_trace):
        cache = S4LruCache(1 << 20)
        for request in var_size_trace:
            cache.request(request)
            assert cache.used_bytes <= cache.capacity
        # Every cached object has a consistent level record.
        for obj_id in cache.cached_objects():
            level = cache.segment_of(obj_id)
            assert level is not None
            assert obj_id in cache._segments[level]

    def test_reasonable_on_zipf(self):
        trace = irm_trace(10_000, 300, alpha=1.0, mean_size=1 << 13, seed=44)
        capacity = int(0.05 * trace.unique_bytes())
        s4 = S4LruCache(capacity)
        lru = LruCache(capacity)
        s4.process(trace)
        lru.process(trace)
        assert s4.object_hit_ratio > lru.object_hit_ratio - 0.02
