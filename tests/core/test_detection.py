"""Drift detection (Section 5.2.2 / Appendix A.2)."""

import numpy as np
import pytest

from repro.core.detection import DriftDetector
from repro.util.sampling import ZipfSampler, zipf_weights


def window_counts(alpha, num_contents=300, num_requests=30_000, seed=0):
    rng = np.random.default_rng(seed)
    sampler = ZipfSampler(num_contents, alpha, rng=rng)
    ids = sampler.sample(num_requests)
    counts = np.bincount(ids, minlength=num_contents)
    return {i: int(c) for i, c in enumerate(counts) if c > 0}


class TestConstruction:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            DriftDetector(epsilon=0.0)


class TestDetection:
    def test_first_window_always_trains(self):
        detector = DriftDetector(epsilon=0.01)
        assert detector.observe_window(window_counts(0.9)) is True

    def test_stable_alpha_no_drift(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.9, seed=1))
        assert detector.observe_window(window_counts(0.9, seed=2)) is False

    def test_alpha_jump_detected(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.7, seed=3))
        assert detector.observe_window(window_counts(1.1, seed=4)) is True

    def test_exact_zipf_detection_accuracy(self):
        """Appendix A.2 setup: alternating alphas with epsilon = 0.002
        should flag every change and no stable window."""
        detector = DriftDetector(epsilon=0.002)
        alphas = [0.7, 0.7, 0.9, 0.9, 1.1, 1.1]
        flags = []
        for alpha in alphas:
            counts = {i: c for i, c in enumerate(zipf_weights(400, alpha) * 1e7)}
            flags.append(detector.observe_window(counts))
        assert flags == [True, False, True, False, True, False]

    def test_degenerate_window_forces_training(self):
        detector = DriftDetector(epsilon=0.01)
        assert detector.observe_window({1: 100}) is True
        assert detector.records[-1].drifted is True

    def test_accepts_plain_sequences(self):
        detector = DriftDetector(epsilon=0.01)
        assert detector.observe_window([50, 25, 17, 12, 10]) is True


class TestRecords:
    def test_records_accumulate(self):
        detector = DriftDetector(epsilon=0.05)
        for seed in range(4):
            detector.observe_window(window_counts(0.9, seed=seed))
        assert len(detector.records) == 4
        assert detector.records[0].previous_alpha is None
        assert detector.records[1].previous_alpha == pytest.approx(
            detector.records[0].alpha
        )

    def test_alphas_series(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.6, seed=5))
        detector.observe_window(window_counts(1.2, seed=6))
        alphas = detector.alphas()
        assert len(alphas) == 2
        assert alphas[1] > alphas[0]

    def test_num_detections(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.7, seed=7))
        detector.observe_window(window_counts(0.7, seed=8))
        detector.observe_window(window_counts(1.2, seed=9))
        assert detector.num_detections == 2  # first window + the jump

    def test_estimated_alpha_tracks_truth(self):
        detector = DriftDetector(epsilon=0.01)
        detector.observe_window(window_counts(0.9, num_requests=100_000, seed=10))
        assert detector.current_alpha == pytest.approx(0.9, abs=0.2)
