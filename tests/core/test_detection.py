"""Drift detection (Section 5.2.2 / Appendix A.2)."""

import numpy as np
import pytest

from repro.core.detection import DriftDetector
from repro.util.sampling import ZipfSampler, zipf_weights


def window_counts(alpha, num_contents=300, num_requests=30_000, seed=0):
    rng = np.random.default_rng(seed)
    sampler = ZipfSampler(num_contents, alpha, rng=rng)
    ids = sampler.sample(num_requests)
    counts = np.bincount(ids, minlength=num_contents)
    return {i: int(c) for i, c in enumerate(counts) if c > 0}


class TestConstruction:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            DriftDetector(epsilon=0.0)


class TestDetection:
    def test_first_window_always_trains(self):
        detector = DriftDetector(epsilon=0.01)
        assert detector.observe_window(window_counts(0.9)) is True

    def test_stable_alpha_no_drift(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.9, seed=1))
        assert detector.observe_window(window_counts(0.9, seed=2)) is False

    def test_alpha_jump_detected(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.7, seed=3))
        assert detector.observe_window(window_counts(1.1, seed=4)) is True

    def test_exact_zipf_detection_accuracy(self):
        """Appendix A.2 setup: alternating alphas with epsilon = 0.002
        should flag every change and no stable window."""
        detector = DriftDetector(epsilon=0.002)
        alphas = [0.7, 0.7, 0.9, 0.9, 1.1, 1.1]
        flags = []
        for alpha in alphas:
            counts = {i: c for i, c in enumerate(zipf_weights(400, alpha) * 1e7)}
            flags.append(detector.observe_window(counts))
        assert flags == [True, False, True, False, True, False]

    def test_degenerate_window_forces_training(self):
        detector = DriftDetector(epsilon=0.01)
        assert detector.observe_window({1: 100}) is True
        assert detector.records[-1].drifted is True

    def test_accepts_plain_sequences(self):
        detector = DriftDetector(epsilon=0.01)
        assert detector.observe_window([50, 25, 17, 12, 10]) is True


class TestRecords:
    def test_records_accumulate(self):
        detector = DriftDetector(epsilon=0.05)
        for seed in range(4):
            detector.observe_window(window_counts(0.9, seed=seed))
        assert len(detector.records) == 4
        assert detector.records[0].previous_alpha is None
        assert detector.records[1].previous_alpha == pytest.approx(
            detector.records[0].alpha
        )

    def test_alphas_series(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.6, seed=5))
        detector.observe_window(window_counts(1.2, seed=6))
        alphas = detector.alphas()
        assert len(alphas) == 2
        assert alphas[1] > alphas[0]

    def test_num_detections(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.7, seed=7))
        detector.observe_window(window_counts(0.7, seed=8))
        detector.observe_window(window_counts(1.2, seed=9))
        assert detector.num_detections == 2  # first window + the jump

    def test_estimated_alpha_tracks_truth(self):
        detector = DriftDetector(epsilon=0.01)
        detector.observe_window(window_counts(0.9, num_requests=100_000, seed=10))
        assert detector.current_alpha == pytest.approx(0.9, abs=0.2)


class TestIntrospection:
    def test_drifted_windows_indices(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.7, seed=0))   # first: trains
        detector.observe_window(window_counts(0.7, seed=1))   # stable
        detector.observe_window(window_counts(1.2, seed=2))   # jump
        assert detector.drifted_windows() == [0, 2]
        assert detector.last_detection_window == 2

    def test_last_detection_window_none_before_any(self):
        assert DriftDetector(epsilon=0.05).last_detection_window is None

    def test_summary_counters(self):
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window(window_counts(0.7, seed=0))
        detector.observe_window(window_counts(0.7, seed=1))
        summary = detector.summary()
        assert summary["windows"] == 2
        assert summary["detections"] == 1
        assert summary["last_detection_window"] == 0
        assert summary["detection_rate"] == pytest.approx(0.5)
        assert summary["mean_alpha"] == pytest.approx(
            sum(detector.alphas()) / 2
        )

    def test_summary_on_zero_windows_is_explicit_empty(self):
        """An unfed detector summarizes cleanly instead of raising — the
        learner report hits this for cells that never closed a window."""
        summary = DriftDetector(epsilon=0.05).summary()
        assert summary == {
            "windows": 0,
            "detections": 0,
            "last_detection_window": None,
            "detection_rate": 0.0,
            "mean_alpha": None,
        }

    def test_summary_mean_alpha_skips_degenerate_fits(self):
        # A degenerate (single-content) window has no alpha fit; the
        # summary's mean must skip it, not average a NaN in.
        detector = DriftDetector(epsilon=0.05)
        detector.observe_window({1: 100})
        summary = detector.summary()
        assert summary["windows"] == 1
        assert summary["mean_alpha"] is None


class TestSyntheticChurn:
    """Detection latency under injected non-stationarity.

    The detector fits alpha from the window's count *values*, so the
    change signal must be a skew (alpha) change — a pure rank permutation
    leaves the count multiset untouched and is invisible by design.
    """

    #: Windows the detector may lag an injected change by.  The fit sees
    #: the change in the first window that straddles it, so one window of
    #: slack is the contract; more means the detector regressed.
    DETECTION_WINDOW_BOUND = 1

    def _window_stream(self, alphas, seed=0):
        return [
            window_counts(alpha, num_requests=30_000, seed=seed + i)
            for i, alpha in enumerate(alphas)
        ]

    def test_detection_within_bounded_window_of_flip(self):
        # Stationary prefix, then the skew flips 0.7 -> 1.1 at window 5.
        flip_at = 5
        alphas = [0.7] * flip_at + [1.1] * 4
        detector = DriftDetector(epsilon=0.05)
        for counts in self._window_stream(alphas):
            detector.observe_window(counts)
        post_flip = [w for w in detector.drifted_windows() if w >= flip_at]
        assert post_flip, "injected alpha flip never detected"
        assert post_flip[0] - flip_at <= self.DETECTION_WINDOW_BOUND

    def test_no_detection_on_stationary_control(self):
        # Same pipeline, no injected change: nothing after window 0 (the
        # mandatory first-window training) may fire.
        detector = DriftDetector(epsilon=0.05)
        for counts in self._window_stream([0.9] * 9, seed=100):
            detector.observe_window(counts)
        assert detector.drifted_windows() == [0]

    def test_detection_rate_scales_with_flips(self):
        # Alternating skew should fire on (at least) every boundary.
        alphas = [0.7, 0.7, 1.1, 1.1, 0.7, 0.7, 1.1, 1.1]
        detector = DriftDetector(epsilon=0.05)
        for counts in self._window_stream(alphas, seed=200):
            detector.observe_window(counts)
        fired = set(detector.drifted_windows())
        assert {2, 4, 6}.issubset(fired)
        assert 3 not in fired and 5 not in fired
