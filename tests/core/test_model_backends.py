"""Model-backend registry: resolution, exactness, and the LHR pin.

The registry's contract is that backend choice is a pure performance
knob: every backend's ``score_block`` equals the scalar reference to
float equality, so an LHR replay is bit-identical whichever backend
scores it.  These tests pin both halves — the backends against each
other on raw models, and full LHR replays against each other end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gbm import GradientBoostingRegressor
from repro.core.lhr import LhrCache
from repro.core.model_backends import (
    AUTO_BACKEND,
    MODEL_BACKENDS,
    BatchedBackend,
    ScalarBackend,
    backend_names,
    resolve_backend,
)
from repro.sim import simulate
from repro.traces.packed import PackedTrace
from repro.traces.synthetic import irm_trace


class TestRegistry:
    def test_known_names(self):
        assert "scalar" in MODEL_BACKENDS
        assert "batched" in MODEL_BACKENDS
        assert backend_names() == ("batched", "scalar", "auto")

    def test_resolution(self):
        assert isinstance(resolve_backend("scalar"), ScalarBackend)
        assert isinstance(resolve_backend("batched"), BatchedBackend)
        assert resolve_backend("auto").name == AUTO_BACKEND

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown model backend"):
            resolve_backend("tpu")

    def test_lhr_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown model backend"):
            LhrCache(1 << 20, model_backend="tpu")

    def test_lhr_default_is_auto(self):
        assert LhrCache(1 << 20).model_backend == AUTO_BACKEND
        assert LhrCache(1 << 20, model_backend="scalar").model_backend == "scalar"


class TestBackendExactness:
    @pytest.fixture(scope="class")
    def model(self):
        rng = np.random.default_rng(3)
        X = rng.random((300, 23))
        y = (rng.random(300) > 0.5).astype(float)
        return GradientBoostingRegressor(
            n_estimators=8, max_depth=4, loss="logistic"
        ).fit(X, y)

    def test_score_block_matches_score_one(self, model):
        rng = np.random.default_rng(4)
        rows = rng.random((64, 23))
        scalar = resolve_backend("scalar")
        batched = resolve_backend("batched")
        reference = [scalar.score_one(model, rows[i]) for i in range(64)]
        assert scalar.score_block(model, rows).tolist() == reference
        assert batched.score_block(model, rows).tolist() == reference

    def test_score_one_agrees_across_backends(self, model):
        row = np.random.default_rng(5).random(23)
        assert resolve_backend("scalar").score_one(model, row) == resolve_backend(
            "batched"
        ).score_one(model, row)


class TestLhrBackendPin:
    """Full replays must be bit-identical across backends — counters,
    window series, retrain count and the threshold trajectory."""

    @pytest.fixture(scope="class")
    def pin_trace(self):
        return PackedTrace.from_trace(
            irm_trace(
                1200, 100, alpha=0.9, mean_size=1 << 14, size_sigma=1.2,
                seed=7, name="golden",
            )
        )

    @pytest.fixture(scope="class")
    def pin_capacity(self, pin_trace):
        return max(int(0.15 * int(pin_trace.sizes.sum())), 1)

    def _replay(self, pin_trace, pin_capacity, backend):
        policy = LhrCache(pin_capacity, seed=0, model_backend=backend)
        result = simulate(policy, pin_trace, window_requests=300)
        return policy, result

    def test_scalar_equals_batched(self, pin_trace, pin_capacity):
        scalar_policy, scalar = self._replay(pin_trace, pin_capacity, "scalar")
        batched_policy, batched = self._replay(pin_trace, pin_capacity, "batched")
        assert scalar.counters() == batched.counters()
        assert scalar.window_series() == batched.window_series()
        assert scalar.object_hit_ratio == batched.object_hit_ratio
        assert scalar_policy.windows_processed == batched_policy.windows_processed
        assert (
            scalar_policy.estimator.history == batched_policy.estimator.history
        )
        assert scalar_policy.cached_objects() == batched_policy.cached_objects()

    def test_auto_equals_batched(self, pin_trace, pin_capacity):
        _, auto = self._replay(pin_trace, pin_capacity, "auto")
        _, batched = self._replay(pin_trace, pin_capacity, "batched")
        assert auto.counters() == batched.counters()
