"""Auto-tuned threshold: candidate set, shadow replay, update guards."""

import pytest

from repro.core.threshold import STEP, ThresholdEstimator, WindowSample, shadow_hit_ratio


def sample(obj_id, p, size=10, time=0.0):
    return WindowSample(obj_id=obj_id, size=size, time=time, probability=p)


class TestConstruction:
    @pytest.mark.parametrize("delta", [-0.1, 1.1])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ValueError):
            ThresholdEstimator(initial_delta=delta)

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            ThresholdEstimator(beta=-0.1)

    def test_rejects_bad_sample_fraction(self):
        with pytest.raises(ValueError):
            ThresholdEstimator(sample_fraction=0.0)


class TestCandidates:
    def test_paper_candidate_set(self):
        estimator = ThresholdEstimator(initial_delta=0.5)
        assert estimator.candidates() == [0.0, 0.4, 0.5, 0.6]

    def test_clipped_at_boundaries(self):
        low = ThresholdEstimator(initial_delta=0.0)
        assert low.candidates() == [0.0, STEP, 0.5]
        high = ThresholdEstimator(initial_delta=1.0)
        assert high.candidates() == [0.0, 0.5, 0.9, 1.0]


class TestShadowReplay:
    def test_empty_samples(self):
        assert shadow_hit_ratio([], 100, 0.5) == 0.0

    def test_admit_all_counts_rerequests(self):
        samples = [sample(1, 1.0, time=0.0), sample(1, 1.0, time=1.0)]
        assert shadow_hit_ratio(samples, 100, 0.0) == pytest.approx(0.5)

    def test_threshold_blocks_low_probability(self):
        samples = [sample(1, 0.2, time=0.0), sample(1, 0.2, time=1.0)]
        assert shadow_hit_ratio(samples, 100, 0.5) == 0.0

    def test_oversized_object_never_cached(self):
        samples = [sample(1, 1.0, size=500, time=0.0), sample(1, 1.0, size=500, time=1.0)]
        assert shadow_hit_ratio(samples, 100, 0.0) == 0.0

    def test_eviction_prefers_low_q(self):
        # Capacity for one object: a high-p object should displace a
        # low-p one and then hit.
        samples = [
            sample(1, 0.1, size=60, time=0.0),
            sample(2, 0.9, size=60, time=1.0),  # evicts 1 (lower q)
            sample(2, 0.9, size=60, time=2.0),  # hit
        ]
        assert shadow_hit_ratio(samples, 100, 0.0) == pytest.approx(1 / 3)


class TestUpdateRules:
    def _samples_favouring_admit_all(self):
        # Mixed-probability re-request stream: admitting everything wins.
        rows = []
        t = 0.0
        for obj_id, p in [(1, 0.3), (2, 0.4), (3, 0.3)]:
            for _ in range(5):
                rows.append(sample(obj_id, p, size=10, time=t))
                t += 1.0
        return rows

    def test_moves_toward_better_threshold(self):
        estimator = ThresholdEstimator(
            initial_delta=0.5, beta=0.001, sample_fraction=1.0
        )
        estimator.update(self._samples_favouring_admit_all(), capacity=100)
        assert estimator.delta < 0.5  # 0.0 beats 0.5 here

    def test_beta_guard_blocks_marginal_wins(self):
        estimator = ThresholdEstimator(
            initial_delta=0.5, beta=1.0, sample_fraction=1.0
        )
        estimator.update(self._samples_favouring_admit_all(), capacity=100)
        assert estimator.delta == 0.5  # improvement below beta: keep

    def test_no_update_when_incumbent_best(self):
        # All probabilities 1.0: every threshold <= 1 behaves identically,
        # so the incumbent must be kept.
        rows = [sample(1, 1.0, time=float(t)) for t in range(6)]
        estimator = ThresholdEstimator(initial_delta=0.5, sample_fraction=1.0)
        estimator.update(rows, capacity=100)
        assert estimator.delta == 0.5

    def test_history_tracks_updates(self):
        estimator = ThresholdEstimator(initial_delta=0.5, sample_fraction=1.0)
        estimator.update(self._samples_favouring_admit_all(), capacity=100)
        assert len(estimator.history) == 2
        assert estimator.history[0] == 0.5

    def test_sampling_is_deterministic(self):
        def run(seed):
            estimator = ThresholdEstimator(
                initial_delta=0.5, sample_fraction=0.5, seed=seed
            )
            estimator.update(self._samples_favouring_admit_all(), capacity=100)
            return estimator.delta

        assert run(3) == run(3)

    def test_empty_window_is_noop(self):
        estimator = ThresholdEstimator(initial_delta=0.5)
        assert estimator.update([], capacity=100) == 0.5


class TestByteObjective:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            ThresholdEstimator(objective="latency")

    def test_byte_weighting_changes_score(self):
        # One small popular object, one huge unpopular one: byte weighting
        # values the huge object's single re-request more.
        samples = [
            sample(1, 1.0, size=10, time=0.0),
            sample(2, 1.0, size=1000, time=1.0),
            sample(1, 1.0, size=10, time=2.0),
            sample(2, 1.0, size=1000, time=3.0),
        ]
        object_score = shadow_hit_ratio(samples, 5000, 0.0)
        byte_score = shadow_hit_ratio(samples, 5000, 0.0, byte_weighted=True)
        assert object_score == pytest.approx(0.5)
        assert byte_score == pytest.approx(1010 / 2020)

    def test_lhr_accepts_byte_objective(self, ):
        from repro.core.lhr import LhrCache

        cache = LhrCache(1000, threshold_objective="byte")
        assert cache.estimator.objective == "byte"
