"""HRO: window mechanics, hazard ranking, upper-bound behaviour."""

import pytest

from repro.core.hro import (
    HroBound,
    compute_top_set,
    hro_bound,
    marginal_hazard,
    window_labels,
)
from repro.policies import make_policy
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def req(obj_id, time, size=10):
    return Request(time=time, obj_id=obj_id, size=size)


class TestConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            HroBound(0)

    def test_rejects_bad_window_multiple(self):
        with pytest.raises(ValueError):
            HroBound(100, window_multiple=0)

    def test_window_bytes(self):
        assert HroBound(100, window_multiple=4.0).window_bytes == 400


class TestWindowMechanics:
    def test_window_closes_on_unique_bytes(self):
        bound = HroBound(10, window_multiple=2.0)  # closes at 20 unique bytes
        for i in range(3):
            bound.process(req(i, time=float(i), size=10))
        assert len(bound.windows) == 1
        assert bound.windows[0].num_requests == 2

    def test_repeat_requests_do_not_advance_window(self):
        bound = HroBound(10, window_multiple=2.0)
        for t in range(10):
            bound.process(req(1, time=float(t), size=10))
        assert len(bound.windows) == 0  # only 10 unique bytes seen

    def test_on_window_callback(self):
        closed = []
        bound = HroBound(10, window_multiple=1.0)
        bound.on_window = closed.append
        bound.process(req(1, time=0.0, size=10))
        assert len(closed) == 1
        assert closed[0].index == 0

    def test_window_statistics(self):
        bound = HroBound(10, window_multiple=3.0)
        bound.process(req(1, time=0.0, size=10))
        bound.process(req(1, time=1.0, size=10))
        bound.process(req(2, time=2.0, size=10))
        bound.process(req(3, time=3.0, size=10))
        window = bound.windows[0]
        assert window.counts == {1: 2, 2: 1, 3: 1}
        assert window.unique_bytes == 30
        assert window.duration == pytest.approx(3.0)

    def test_hazard_rates_size_normalized(self):
        bound = HroBound(100, window_multiple=1.0)
        bound.process(req(1, time=0.0, size=10))
        bound.process(req(2, time=1.0, size=100))
        window = bound.windows[0]
        rates = window.hazard_rates()
        assert rates[1] == pytest.approx(10 * rates[2])


class TestClassification:
    def test_first_window_uses_infinite_cap_rule(self):
        bound = HroBound(1000, window_multiple=100.0)
        assert bound.process(req(1, time=0.0)) is False
        assert bound.process(req(1, time=1.0)) is True  # seen before
        assert bound.process(req(2, time=2.0)) is False

    def test_cold_content_never_hits(self):
        bound = HroBound(20, window_multiple=1.0)
        for i in range(20):
            assert bound.process(req(i, time=float(i), size=10)) is False

    def test_popular_content_hits_after_threshold_set(self):
        bound = HroBound(20, window_multiple=1.0)
        # Content 1 requested often; fillers close windows.
        filler = 100
        hits = []
        for t in range(40):
            hits.append(bound.process(req(1, time=2.0 * t, size=10)))
            bound.process(req(filler, time=2.0 * t + 1.0, size=10))
            filler += 1
        assert any(hits)
        assert bound.hit_ratio > 0

    def test_result_aggregates(self):
        bound = HroBound(1000, window_multiple=10.0)
        for t in range(5):
            bound.process(req(1, time=float(t), size=10))
        result = bound.result()
        assert result.name == "hro"
        assert result.requests == 5
        assert result.hits == 4
        assert result.total_bytes == 50


class TestTopSet:
    def test_compute_top_set_ranks_by_hazard_per_byte(self):
        counts = {1: 10, 2: 10}
        sizes = {1: 10, 2: 100}
        top = compute_top_set(counts, sizes, duration=1.0, capacity=10)
        assert 1 in top  # same rate, smaller size -> higher hazard

    def test_empty_counts(self):
        assert compute_top_set({}, {}, 1.0, 10) == frozenset()

    def test_marginal_hazard_zero_when_everything_fits(self):
        threshold = marginal_hazard({1: 5}, {1: 10}, 1.0, capacity=100)
        assert threshold == 0.0

    def test_marginal_hazard_positive_under_pressure(self):
        counts = {i: 10 - i for i in range(10)}
        sizes = {i: 10 for i in range(10)}
        threshold = marginal_hazard(counts, sizes, 1.0, capacity=30)
        assert threshold > 0.0


class TestWindowLabels:
    def test_labels_match_top_set(self):
        bound = HroBound(10, window_multiple=2.0)
        windows = []
        bound.on_window = windows.append
        stream = [req(1, 0.0, 10), req(1, 1.0, 10), req(2, 2.0, 10)]
        for r in stream:
            bound.process(r)
        labels = window_labels(windows[0], stream)
        assert labels.shape == (3,)
        for label, r in zip(labels, stream):
            assert label == (1.0 if r.obj_id in windows[0].top_set else 0.0)


class TestBoundQuality:
    def test_upper_bounds_online_policies_on_irm(self):
        """On a stationary workload HRO should dominate online policies
        (Proposition A.1)."""
        trace = irm_trace(15_000, 200, alpha=0.9, mean_size=1 << 14, seed=8)
        capacity = int(0.1 * trace.unique_bytes())
        hro = hro_bound(trace, capacity)
        for name in ("lru", "lfu-da", "gdsf", "w-tinylfu"):
            policy = make_policy(name, capacity)
            policy.process(trace)
            assert hro.hits >= policy.hits, name

    def test_below_infinite_cap(self, production_trace, production_capacity):
        from repro.bounds import infinite_cap

        hro = hro_bound(production_trace, production_capacity)
        ceiling = infinite_cap(production_trace.requests)
        assert hro.hits <= ceiling.hits

    def test_larger_cache_raises_bound(self, production_trace):
        small = hro_bound(production_trace, int(0.02 * production_trace.unique_bytes()))
        large = hro_bound(production_trace, int(0.2 * production_trace.unique_bytes()))
        assert large.hits >= small.hits


class TestHazardModelIntegration:
    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="hazard_model"):
            HroBound(100, hazard_model="cauchy")

    @pytest.mark.parametrize("model", ["weibull", "hyperexponential"])
    def test_non_poisson_models_run(self, production_trace, production_capacity, model):
        bound = hro_bound(
            production_trace,
            production_capacity,
            min_window_requests=512,
            hazard_model=model,
        )
        assert 0.0 < bound.hit_ratio < 1.0

    def test_models_refit_at_window_close(self, production_trace, production_capacity):
        bound = HroBound(
            production_capacity, min_window_requests=512, hazard_model="weibull"
        )
        for request in production_trace:
            bound.process(request)
        assert len(bound.windows) >= 2
        assert len(bound._models) > 0

    def test_non_poisson_still_upper_bounds_policies(self):
        from repro.policies import make_policy
        from repro.traces.synthetic import irm_trace

        trace = irm_trace(12_000, 200, alpha=0.9, mean_size=1 << 14, seed=17)
        capacity = int(0.1 * trace.unique_bytes())
        bound = hro_bound(
            trace, capacity, min_window_requests=512, hazard_model="weibull"
        )
        for name in ("lru", "gdsf"):
            policy = make_policy(name, capacity)
            policy.process(trace)
            assert bound.hits >= policy.hits, name

    def test_poisson_path_keeps_no_irt_state(self, production_trace, production_capacity):
        bound = HroBound(production_capacity, min_window_requests=512)
        for request in production_trace[:1000]:
            bound.process(request)
        assert not bound._irts and not bound._models
