"""Hazard-model estimators: fits, hazard shapes, dispatch."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hazard_models import (
    HAZARD_MODELS,
    HyperexponentialHazard,
    PoissonHazard,
    WeibullHazard,
    fit_hazard_model,
)


class TestPoisson:
    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            PoissonHazard(-1.0)

    def test_constant_hazard(self):
        model = PoissonHazard(0.5)
        assert model.hazard(0.0) == model.hazard(100.0) == 0.5
        assert model.mean_irt == 2.0

    def test_fit_recovers_rate(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(4.0, 5000)
        model = PoissonHazard.fit(samples)
        assert model.hazard(0.0) == pytest.approx(0.25, rel=0.1)

    def test_fit_empty(self):
        model = PoissonHazard.fit([])
        assert model.hazard(1.0) == 0.0
        assert model.mean_irt == math.inf


class TestWeibull:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WeibullHazard(0.0, 1.0)
        with pytest.raises(ValueError):
            WeibullHazard(1.0, -1.0)

    def test_exponential_special_case(self):
        # shape 1 is the exponential: constant hazard 1/scale.
        model = WeibullHazard(1.0, 5.0)
        assert model.hazard(0.1) == pytest.approx(0.2)
        assert model.hazard(50.0) == pytest.approx(0.2)
        assert model.mean_irt == pytest.approx(5.0)

    def test_bursty_hazard_decreases(self):
        model = WeibullHazard(0.5, 10.0)
        assert model.hazard(1.0) > model.hazard(10.0) > model.hazard(100.0)

    def test_regular_hazard_increases(self):
        model = WeibullHazard(3.0, 10.0)
        assert model.hazard(1.0) < model.hazard(5.0) < model.hazard(15.0)

    def test_fit_recovers_shape(self):
        rng = np.random.default_rng(1)
        for true_shape in (0.6, 1.0, 2.5):
            samples = rng.weibull(true_shape, 20_000) * 7.0
            model = WeibullHazard.fit(samples)
            assert model.shape == pytest.approx(true_shape, rel=0.15)
            assert model.mean_irt == pytest.approx(float(samples.mean()), rel=0.05)

    def test_fit_single_sample_falls_back_to_exponential(self):
        model = WeibullHazard.fit([3.0])
        assert model.shape == 1.0


class TestHyperexponential:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HyperexponentialHazard(1.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            HyperexponentialHazard(0.5, 0.0, 1.0)

    def test_degenerates_to_exponential_for_low_cv(self):
        rng = np.random.default_rng(2)
        samples = rng.uniform(4.0, 6.0, 1000)  # CV < 1
        model = HyperexponentialHazard.fit(samples)
        assert model.rate1 == pytest.approx(model.rate2)
        assert model.hazard(0.0) == pytest.approx(model.hazard(100.0))

    def test_hazard_decreasing_for_heavy_tail(self):
        model = HyperexponentialHazard(0.9, 1.0, 0.01)
        assert model.hazard(0.0) > model.hazard(10.0) > model.hazard(1000.0)
        # Asymptotically the slow phase dominates.
        assert model.hazard(10_000.0) == pytest.approx(0.01, rel=0.05)

    def test_fit_matches_mean(self):
        rng = np.random.default_rng(3)
        samples = np.concatenate(
            [rng.exponential(1.0, 8000), rng.exponential(50.0, 2000)]
        )
        model = HyperexponentialHazard.fit(samples)
        assert model.mean_irt == pytest.approx(float(samples.mean()), rel=0.05)
        assert model.p < 1.0  # genuinely two-phase


class TestDispatch:
    @pytest.mark.parametrize("name", HAZARD_MODELS)
    def test_all_models_fit(self, name):
        model = fit_hazard_model(name, [1.0, 2.0, 3.0, 10.0])
        assert model.hazard(1.0) >= 0.0
        assert model.mean_irt > 0.0

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown hazard model"):
            fit_hazard_model("cauchy", [1.0])


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=1e-3, max_value=1e5, allow_nan=False),
        min_size=2,
        max_size=60,
    )
)
def test_property_all_models_nonnegative_hazard(irts):
    for name in HAZARD_MODELS:
        model = fit_hazard_model(name, irts)
        for age in (0.0, 0.5, 5.0, 500.0):
            assert model.hazard(age) >= 0.0
        assert model.mean_irt > 0.0
