"""FeatureStore: IRT semantics (Section 5.2.1) and pruning."""

import numpy as np
import pytest

from repro.core.features import DEFAULT_MISSING, FeatureStore, feature_dim
from repro.traces.request import Request


def req(obj_id, time, size=100):
    return Request(time=time, obj_id=obj_id, size=size)


class TestFeatureDim:
    def test_dimension(self):
        assert feature_dim(20) == 23  # 20 IRTs + 3 static features


class TestVectorSemantics:
    def test_rejects_bad_max_irts(self):
        with pytest.raises(ValueError):
            FeatureStore(max_irts=0)

    def test_unknown_content_all_missing(self):
        store = FeatureStore()
        row = store.vector(99, now=10.0, num_irts=5)
        assert (row[:5] == DEFAULT_MISSING).all()
        assert (row[5:] == 0.0).all()

    def test_irt1_is_time_since_last_request(self):
        store = FeatureStore()
        store.observe(req(1, time=10.0))
        row = store.vector(1, now=17.5, num_irts=5)
        assert row[0] == pytest.approx(7.5)

    def test_irt_chain_matches_paper_definition(self):
        # IRT_2 is the gap between the previous two requests, IRT_3 the
        # one before, etc.
        store = FeatureStore()
        for t in (0.0, 1.0, 4.0, 9.0):  # gaps 1, 3, 5
            store.observe(req(1, time=t))
        row = store.vector(1, now=11.0, num_irts=5)
        assert row[0] == pytest.approx(2.0)  # now - last
        assert row[1] == pytest.approx(5.0)  # most recent stored gap
        assert row[2] == pytest.approx(3.0)
        assert row[3] == pytest.approx(1.0)
        assert row[4] == DEFAULT_MISSING  # only 3 gaps exist

    def test_static_features(self):
        store = FeatureStore()
        store.observe(req(1, time=2.0, size=1000))
        store.observe(req(1, time=5.0, size=1000))
        row = store.vector(1, now=6.0, num_irts=2)
        assert row[2] == pytest.approx(np.log1p(1000))  # log size
        assert row[3] == 2  # request count
        assert row[4] == pytest.approx(4.0)  # age since first request

    def test_num_irts_bounds(self):
        store = FeatureStore(max_irts=8)
        store.observe(req(1, time=0.0))
        with pytest.raises(ValueError):
            store.vector(1, now=1.0, num_irts=9)
        with pytest.raises(ValueError):
            store.vector(1, now=1.0, num_irts=0)

    def test_gap_buffer_bounded_by_max_irts(self):
        store = FeatureStore(max_irts=4)
        for t in range(20):
            store.observe(req(1, time=float(t)))
        row = store.vector(1, now=20.0, num_irts=4)
        assert row[:4] == pytest.approx([1.0, 1.0, 1.0, 1.0])

    def test_figure6_sweep_dimensions(self):
        # The Figure 6 ablation reads 10/20/30 IRT vectors off one store.
        store = FeatureStore(max_irts=32)
        store.observe(req(1, time=0.0))
        for k in (10, 20, 30):
            assert store.vector(1, now=1.0, num_irts=k).shape == (feature_dim(k),)

    def test_ring_buffer_matches_deque_semantics_at_every_step(self):
        """The preallocated ring must reproduce appendleft order exactly,
        including across the wraparound point — checked against a naive
        list model after every observation."""
        from collections import deque

        max_irts = 5
        store = FeatureStore(max_irts=max_irts)
        model = deque(maxlen=max_irts - 1)  # most recent gap first
        times = [0.0, 0.5, 2.0, 2.25, 7.0, 7.5, 10.0, 11.0, 11.5, 20.0, 21.0]
        last = None
        for t in times:
            store.observe(req(1, time=t))
            if last is not None:
                model.appendleft(t - last)
            last = t
            row = store.vector(1, now=t + 1.0, num_irts=max_irts)
            expected = list(model) + [DEFAULT_MISSING] * (
                max_irts - 1 - len(model)
            )
            assert row[0] == pytest.approx(1.0)
            assert row[1:max_irts] == pytest.approx(expected)

    def test_vector_wraparound_split_copy(self):
        """A read that straddles the ring's physical end uses two slice
        copies; both halves must land in the right order."""
        store = FeatureStore(max_irts=4)  # 3 gap slots
        # Gaps pushed: 1, 2, 4, 8 — the ring holds [8, 4, 2] logically,
        # with the head somewhere mid-buffer after the fourth push.
        for t in (0.0, 1.0, 3.0, 7.0, 15.0):
            store.observe(req(1, time=t))
        row = store.vector(1, now=16.0, num_irts=4)
        assert row[:4] == pytest.approx([1.0, 8.0, 4.0, 2.0])


class TestAccessors:
    def test_last_access_and_count(self):
        store = FeatureStore()
        assert store.last_access(1) is None
        assert store.request_count(1) == 0
        store.observe(req(1, time=3.0))
        store.observe(req(1, time=8.0))
        assert store.last_access(1) == 8.0
        assert store.request_count(1) == 2

    def test_contains_and_len(self):
        store = FeatureStore()
        store.observe(req(1, time=0.0))
        store.observe(req(2, time=1.0))
        assert 1 in store and 2 in store and 3 not in store
        assert len(store) == 2


class TestPruning:
    def test_prune_removes_idle_contents(self):
        store = FeatureStore()
        store.observe(req(1, time=0.0))
        store.observe(req(2, time=100.0))
        pruned = store.prune(now=101.0, horizon=50.0)
        assert pruned == 1
        assert 1 not in store and 2 in store

    def test_prune_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            FeatureStore().prune(now=0.0, horizon=0.0)

    def test_metadata_bytes_tracks_population(self):
        store = FeatureStore()
        assert store.metadata_bytes() == 0
        for i in range(10):
            store.observe(req(i, time=float(i)))
        assert store.metadata_bytes() > 0

    def test_incremental_metadata_matches_recomputation(self):
        """``metadata_bytes`` is maintained as a running counter (the
        engine probes it mid-replay); it must equal a from-scratch walk
        of the records after observes, ring saturation, and prunes."""

        def recompute(store):
            return 8 * sum(
                record.length + 4 for record in store._records.values()
            )

        store = FeatureStore(max_irts=3)
        for step in range(30):
            store.observe(req(step % 5, time=float(step)))
            assert store.metadata_bytes() == recompute(store)
        store.observe(req(99, time=100.0))
        store.prune(now=101.0, horizon=50.0)  # drops contents 0..4
        assert 99 in store and len(store) == 1
        assert store.metadata_bytes() == recompute(store)
        store.prune(now=1e6, horizon=1.0)  # drops everything
        assert store.metadata_bytes() == 0 == recompute(store)


class TestFeatureMatrix:
    """``feature_matrix`` (the batched gather behind the batched LHR
    backend) must be bit-identical to the interleaved scalar reference:
    ``vector()`` then ``observe_scalar()`` per request — including
    intra-span repeats — while leaving the store untouched."""

    def _random_span(self, rng, length, ids=8):
        obj_ids = rng.integers(0, ids, size=length).tolist()
        sizes = rng.integers(1, 5000, size=length).tolist()
        times = np.cumsum(rng.random(length)).tolist()
        return obj_ids, sizes, times

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("num_irts", [3, 10, 20])
    def test_matches_interleaved_scalar_path(self, seed, num_irts):
        rng = np.random.default_rng(seed)
        batched = FeatureStore(max_irts=max(num_irts, 4))
        reference = FeatureStore(max_irts=max(num_irts, 4))
        # Pre-seed both stores identically so span rows compose virtual
        # overlays with *existing* records, not just fresh ones.
        for store in (batched, reference):
            for t in range(12):
                store.observe_scalar(t % 5, 100 + t, float(t))
        obj_ids, sizes, times = self._random_span(rng, 60)
        times = [t + 12.0 for t in times]
        matrix = batched.feature_matrix(
            obj_ids, sizes, times, 0, len(obj_ids), num_irts=num_irts
        )
        for k in range(len(obj_ids)):
            row = reference.vector(obj_ids[k], now=times[k], num_irts=num_irts)
            assert matrix[k].tolist() == row.tolist(), f"row {k} diverges"
            reference.observe_scalar(obj_ids[k], sizes[k], times[k])

    def test_store_is_not_mutated(self):
        store = FeatureStore()
        for t in range(6):
            store.observe_scalar(t % 2, 100, float(t))
        before = {oid: store.vector(oid, now=10.0).tolist() for oid in (0, 1)}
        meta = store.metadata_bytes()
        store.feature_matrix([0, 1, 0, 3], [10, 20, 30, 40], [10.0, 11.0, 12.0, 13.0], 0, 4)
        assert store.metadata_bytes() == meta
        assert 3 not in store
        for oid in (0, 1):
            assert store.vector(oid, now=10.0).tolist() == before[oid]

    def test_sub_span_respects_begin_end(self):
        store = FeatureStore()
        obj_ids = [7, 7, 8, 7]
        sizes = [10, 10, 10, 10]
        times = [0.0, 1.0, 2.0, 3.0]
        matrix = store.feature_matrix(obj_ids, sizes, times, 2, 4)
        # Row 0 of the sub-span is request index 2 (object 8, unseen).
        assert matrix.shape[0] == 2
        assert matrix[0][0] == DEFAULT_MISSING
        # Request 3 sees neither virtual observation from indices 0-1.
        assert matrix[1][0] == DEFAULT_MISSING
