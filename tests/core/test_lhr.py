"""LHR: Algorithm 1 end to end, the four request cases, and ablations."""

import pytest

from repro.core.lhr import DLhrCache, LhrCache, NLhrCache
from repro.policies import make_policy
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def req(obj_id, time, size=10):
    return Request(time=time, obj_id=obj_id, size=size)


@pytest.fixture(scope="module")
def trained_lhr(production_trace, production_capacity):
    cache = LhrCache(production_capacity, seed=0)
    cache.process(production_trace)
    return cache


class TestConstruction:
    def test_rejects_bad_eviction_rule(self):
        with pytest.raises(ValueError):
            LhrCache(100, eviction_rule="bogus")

    def test_variant_flags(self):
        d = DLhrCache(100)
        assert d.auto_threshold is False and d.use_detection is True
        n = NLhrCache(100)
        assert n.auto_threshold is False and n.use_detection is False

    def test_variant_names(self):
        assert DLhrCache(100).name == "d-lhr"
        assert NLhrCache(100).name == "n-lhr"
        assert LhrCache(100).name == "lhr"


class TestBootstrap:
    def test_admit_all_before_first_model(self):
        cache = LhrCache(1 << 30)
        cache.request(req(1, time=0.0))
        assert cache.contains(1)
        assert cache.admission_probability(1) == 1.0
        assert not cache.model_ready

    def test_initial_delta_is_half(self):
        assert LhrCache(100).delta == 0.5


class TestWindowPipeline:
    def test_model_trains_after_first_window(self):
        cache = LhrCache(100, window_multiple=1.0, min_window_requests=0, seed=1)
        for i in range(30):
            cache.request(req(i, time=float(i), size=10))
        assert cache.windows_processed >= 1
        assert cache.model_ready
        assert cache.trainings >= 1
        assert cache.training_seconds > 0

    def test_detection_gates_retraining(self, production_trace, production_capacity):
        gated = LhrCache(production_capacity, epsilon=10.0, seed=2)  # never drift
        always = NLhrCache(production_capacity, seed=2)
        gated.process(production_trace)
        always.process(production_trace)
        assert gated.windows_processed == always.windows_processed
        # epsilon so large the detector only fires the mandatory first time.
        assert gated.trainings <= 1 + 0
        assert always.trainings == always.windows_processed

    def test_window_buffers_cleared(self, trained_lhr):
        # After the final window closes mid-trace, the buffers hold at
        # most one open window of data.
        assert len(trained_lhr._window_rows) <= len(trained_lhr.hro._accumulator.counts) + trained_lhr.hro._accumulator.num_requests


class TestRequestCases:
    def _bootstrapped(self):
        """LHR with a trained model and controllable probabilities."""
        cache = LhrCache(1000, window_multiple=1.0, min_window_requests=0, seed=3)
        for i in range(200):
            cache.request(req(i % 40, time=float(i), size=50))
        assert cache.model_ready
        return cache

    def test_case_iv_low_probability_miss_discarded(self):
        cache = self._bootstrapped()
        cache.estimator.delta = 1.1  # force every p below delta
        cache.request(req(999, time=1000.0, size=50))
        assert not cache.contains(999)

    def test_case_iii_high_probability_miss_admitted(self):
        cache = self._bootstrapped()
        cache.estimator.delta = 0.0
        cache.request(req(998, time=1001.0, size=50))
        assert cache.contains(998)

    def test_case_ii_hit_below_delta_marks_eviction_candidate(self):
        cache = self._bootstrapped()
        cache.estimator.delta = 0.0
        cache.request(req(997, time=1002.0, size=50))
        cache.estimator.delta = 1.1
        cache.request(req(997, time=1003.0, size=50))  # hit with p < delta
        assert 997 in cache._eviction_candidates

    def test_case_i_hit_above_delta_clears_candidate_mark(self):
        cache = self._bootstrapped()
        cache.estimator.delta = 0.0
        cache.request(req(996, time=1004.0, size=50))
        cache.estimator.delta = 1.1
        cache.request(req(996, time=1005.0, size=50))
        cache.estimator.delta = 0.0
        cache.request(req(996, time=1006.0, size=50))
        assert 996 not in cache._eviction_candidates

    def test_probability_vector_tracks_cached_contents(self, trained_lhr):
        for obj_id in list(trained_lhr.cached_objects())[:20]:
            assert trained_lhr.admission_probability(obj_id) is not None


class TestEviction:
    def test_eviction_values_prefer_recent_popular(self):
        cache = LhrCache(1000, seed=4)
        cache._probabilities = {1: 0.9, 2: 0.1}
        cache._sizes = {1: 10, 2: 10}
        cache.features.observe(req(1, time=0.0))
        cache.features.observe(req(2, time=0.0))
        q1 = cache._eviction_value(1, now=5.0)
        q2 = cache._eviction_value(2, now=5.0)
        assert q1 > q2  # higher p -> keep

    def test_size_matters_under_lhr_rule(self):
        cache = LhrCache(1000, eviction_rule="lhr", seed=5)
        cache._probabilities = {1: 0.5, 2: 0.5}
        cache._sizes = {1: 10, 2: 1000}
        cache.features.observe(req(1, time=0.0, size=10))
        cache.features.observe(req(2, time=0.0, size=1000))
        assert cache._eviction_value(1, now=5.0) > cache._eviction_value(2, now=5.0)

    def test_p_only_rule_ignores_size_and_recency(self):
        cache = LhrCache(1000, eviction_rule="p-only", seed=6)
        cache._probabilities = {1: 0.5}
        assert cache._eviction_value(1, now=123.0) == 0.5

    def test_capacity_respected_throughout(self, production_trace, production_capacity):
        cache = LhrCache(production_capacity, seed=7)
        for request in production_trace:
            cache.request(request)
            assert cache.used_bytes <= production_capacity


class TestEndToEnd:
    def test_beats_lru_on_production_standin(self, production_trace, production_capacity, trained_lhr):
        lru = make_policy("lru", production_capacity)
        lru.process(production_trace)
        assert trained_lhr.object_hit_ratio > lru.object_hit_ratio

    def test_below_hro_bound(self, trained_lhr):
        assert trained_lhr.object_hit_ratio <= trained_lhr.hro.hit_ratio + 0.05

    def test_metadata_accounting(self, trained_lhr, production_capacity):
        metadata = trained_lhr.metadata_bytes()
        assert metadata > 0
        # Section 7.2: metadata is a small fraction of the cache size.
        assert metadata < 0.25 * production_capacity

    def test_deterministic_given_seed(self):
        trace = irm_trace(2000, 60, mean_size=1 << 12, seed=9)
        capacity = int(0.2 * trace.unique_bytes())

        def run():
            cache = LhrCache(capacity, seed=11)
            cache.process(trace)
            return cache.hits, cache.delta

        assert run() == run()

    def test_ablation_hierarchy_runs(self, production_trace, production_capacity):
        results = {}
        for cls in (LhrCache, DLhrCache, NLhrCache):
            cache = cls(production_capacity, seed=12)
            cache.process(production_trace)
            results[cache.name] = cache
        # All variants function; N-LHR trains at least as often as D-LHR.
        assert results["n-lhr"].trainings >= results["d-lhr"].trainings
        for cache in results.values():
            assert 0.0 < cache.object_hit_ratio < 1.0


class TestDeeperBehaviour:
    def test_threshold_history_length_matches_updates(self, production_trace, production_capacity):
        cache = LhrCache(production_capacity, seed=3)
        cache.process(production_trace)
        # History grows only on windows where the estimator ran (drift or
        # first training), plus the initial entry.
        assert 1 <= len(cache.estimator.history) <= cache.windows_processed + 1

    def test_feature_store_pruned_between_windows(self, production_trace, production_capacity):
        cache = LhrCache(production_capacity, seed=4)
        cache.process(production_trace)
        # The store must not have retained every content ever seen
        # (pruning bounds it to recently active contents).
        total_contents = len(production_trace.unique_contents())
        assert len(cache.features) <= total_contents

    def test_model_uses_irt_features(self, production_trace, production_capacity):
        from repro.core.features import feature_dim

        cache = LhrCache(production_capacity, seed=5)
        cache.process(production_trace)
        importances = cache._model.feature_importances(
            feature_dim(cache.num_irts)
        )
        assert importances.sum() == pytest.approx(1.0)
        # IRT_1 (recency) or the static block must carry real signal.
        assert importances.max() > 0.05

    def test_eviction_candidates_subset_of_cache(self, production_trace, production_capacity):
        cache = LhrCache(production_capacity, seed=6)
        for request in production_trace:
            cache.request(request)
        cached = set(cache.cached_objects())
        assert set(cache._eviction_candidates).issubset(cached)

    def test_window_multiple_controls_window_count(self, production_trace, production_capacity):
        narrow = LhrCache(production_capacity, window_multiple=2.0,
                          min_window_requests=0, seed=7)
        wide = LhrCache(production_capacity, window_multiple=8.0,
                        min_window_requests=0, seed=7)
        narrow.process(production_trace)
        wide.process(production_trace)
        assert narrow.windows_processed >= wide.windows_processed

    def test_hro_labels_nontrivial(self, production_trace, production_capacity):
        """The supervision signal must contain both classes, otherwise the
        learner degenerates to a constant."""
        from repro.core.hro import window_labels_for_ids

        cache = LhrCache(production_capacity, seed=8)
        labels_seen = []
        original = cache._train

        def spy(window):
            labels_seen.append(
                float(window_labels_for_ids(window, cache._window_ids).mean())
            )
            original(window)

        cache._train = spy
        cache.process(production_trace)
        assert labels_seen
        assert any(0.02 < fraction < 0.98 for fraction in labels_seen)
