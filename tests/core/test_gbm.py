"""Gradient-boosting model: learning ability, API contract, scalar path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gbm import GradientBoostingRegressor


@pytest.fixture(scope="module")
def xor_data():
    rng = np.random.default_rng(0)
    X = rng.random((4000, 4))
    y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(float)
    return X, y


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_estimators": 0},
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
            {"n_bins": 1},
            {"n_bins": 300},
            {"subsample": 0.0},
        ],
    )
    def test_rejects_bad_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(**kwargs)

    def test_predict_before_fit_raises(self):
        model = GradientBoostingRegressor()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            model.predict_one(np.zeros(3))


class TestFitValidation:
    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.zeros(5), np.zeros(5))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.zeros((0, 2)), np.zeros(0))


class TestLearning:
    def test_constant_target(self):
        X = np.random.default_rng(1).random((100, 3))
        model = GradientBoostingRegressor(n_estimators=5).fit(X, np.full(100, 3.5))
        assert np.allclose(model.predict(X), 3.5, atol=1e-9)

    def test_learns_step_function(self):
        rng = np.random.default_rng(2)
        X = rng.random((2000, 2))
        y = (X[:, 0] > 0.3).astype(float)
        model = GradientBoostingRegressor(n_estimators=20, max_depth=3).fit(X, y)
        predictions = model.predict(X)
        assert ((predictions > 0.5) == (y > 0.5)).mean() > 0.98

    def test_learns_xor(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=40, max_depth=4).fit(X, y)
        predictions = model.predict(X)
        assert ((predictions > 0.5) == (y > 0.5)).mean() > 0.95

    def test_more_trees_reduce_training_error(self, xor_data):
        X, y = xor_data
        def mse(trees):
            model = GradientBoostingRegressor(n_estimators=trees, max_depth=4)
            return float(((model.fit(X, y).predict(X) - y) ** 2).mean())

        assert mse(30) < mse(3)

    def test_deterministic_given_seed(self, xor_data):
        X, y = xor_data
        a = GradientBoostingRegressor(n_estimators=8, subsample=0.7, seed=5).fit(X, y)
        b = GradientBoostingRegressor(n_estimators=8, subsample=0.7, seed=5).fit(X, y)
        assert np.allclose(a.predict(X[:50]), b.predict(X[:50]))

    def test_min_samples_leaf_respected(self):
        # With min_samples_leaf = n no split is possible: model = mean.
        rng = np.random.default_rng(3)
        X = rng.random((50, 2))
        y = rng.random(50)
        model = GradientBoostingRegressor(
            n_estimators=5, min_samples_leaf=50
        ).fit(X, y)
        assert np.allclose(model.predict(X), y.mean(), atol=1e-9)

    def test_single_feature(self):
        rng = np.random.default_rng(4)
        X = rng.random((500, 1))
        y = 2.0 * (X[:, 0] > 0.6)
        model = GradientBoostingRegressor(n_estimators=10).fit(X, y)
        assert ((model.predict(X) > 1.0) == (y > 1.0)).mean() > 0.98

    def test_constant_feature_ignored(self):
        rng = np.random.default_rng(5)
        X = np.column_stack([np.full(300, 7.0), rng.random(300)])
        y = (X[:, 1] > 0.5).astype(float)
        model = GradientBoostingRegressor(n_estimators=10).fit(X, y)
        assert ((model.predict(X) > 0.5) == (y > 0.5)).mean() > 0.97


class TestPredictApi:
    def test_predict_accepts_1d_row(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=5).fit(X, y)
        assert model.predict(X[0]).shape == (1,)

    def test_predict_one_matches_vectorized(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=12, max_depth=4).fit(X, y)
        vectorized = model.predict(X[:100])
        scalar = np.array([model.predict_one(X[i]) for i in range(100)])
        assert np.allclose(vectorized, scalar, atol=1e-12)

    def test_predict_one_accepts_plain_list(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=4).fit(X, y)
        assert model.predict_one(list(X[0])) == pytest.approx(
            float(model.predict(X[:1])[0])
        )

    def test_num_trees_and_metadata(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=7).fit(X, y)
        assert model.num_trees == 7
        assert model.metadata_bytes() > 0

    def test_refit_replaces_model(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=5)
        model.fit(X, y)
        first = model.predict(X[:10]).copy()
        model.fit(X, 1.0 - y)
        second = model.predict(X[:10])
        assert not np.allclose(first, second)

    def test_refit_invalidates_derived_caches(self, xor_data):
        """Regression: ``predict_one``'s flattened trees and the
        ``metadata_bytes`` total are caches over ``_trees``; a refit must
        drop both or the scalar path keeps scoring with the old model."""
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=5)
        model.fit(X, y)
        model.predict_one(X[0])  # populate the scalar-tree cache
        first_meta = model.metadata_bytes()
        assert model._scalar_trees is not None
        assert model._metadata_bytes == first_meta

        model.fit(X, 1.0 - y)
        assert model._scalar_trees is None
        assert model._metadata_bytes is None
        # The rebuilt caches reflect the new ensemble, not the old one.
        scalar = np.array([model.predict_one(X[i]) for i in range(50)])
        assert np.allclose(model.predict(X[:50]), scalar, atol=1e-12)
        assert model.metadata_bytes() > 0

    def test_metadata_bytes_cached_and_stable(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=6).fit(X, y)
        assert model.metadata_bytes() == model.metadata_bytes()
        smaller = GradientBoostingRegressor(n_estimators=2).fit(X, y)
        assert smaller.metadata_bytes() < model.metadata_bytes()


class TestPredictBatch:
    """``predict_batch`` is the scalar path run level-order over a block:
    it must equal ``predict_one`` to the last bit (the batched LHR
    backend's exactness claim rests on this)."""

    def test_matches_predict_one_exactly(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=12, max_depth=4).fit(X, y)
        batch = model.predict_batch(X[:100])
        scalar = [model.predict_one(X[i]) for i in range(100)]
        assert batch.tolist() == scalar  # float equality, not allclose

    def test_matches_predict_one_logistic(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(
            n_estimators=10, max_depth=3, loss="logistic"
        ).fit(X, (y > 0.5).astype(float))
        batch = model.predict_batch(X[:100])
        scalar = [model.predict_one(X[i]) for i in range(100)]
        assert batch.tolist() == scalar

    def test_degenerate_single_node_trees(self):
        # A constant target yields zero residuals: every tree is a bare
        # root (a self-looping leaf in the flattened layout).
        X = np.random.default_rng(0).random((50, 3))
        y = np.full(50, 0.25)
        model = GradientBoostingRegressor(n_estimators=4).fit(X, y)
        batch = model.predict_batch(X)
        scalar = [model.predict_one(X[i]) for i in range(50)]
        assert batch.tolist() == scalar

    def test_accepts_plain_lists(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=4).fit(X, y)
        rows = [list(X[i]) for i in range(10)]
        assert model.predict_batch(rows).tolist() == [
            model.predict_one(row) for row in rows
        ]

    def test_empty_block(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=3).fit(X, y)
        assert model.predict_batch(np.empty((0, X.shape[1]))).shape == (0,)

    def test_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict_batch(np.zeros((2, 3)))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=2**31 - 1),
        st.sampled_from(["squared", "logistic"]),
        st.integers(min_value=1, max_value=4),
    )
    def test_property_batch_equals_scalar(self, seed, loss, depth):
        rng = np.random.default_rng(seed)
        X = rng.random((120, 4))
        y = rng.random(120)
        if loss == "logistic":
            y = (y > 0.5).astype(float)
        model = GradientBoostingRegressor(
            n_estimators=int(rng.integers(1, 8)),
            max_depth=depth,
            min_samples_leaf=int(rng.integers(1, 30)),
            seed=seed,
            loss=loss,
        ).fit(X, y)
        probe = rng.random((40, 4))
        batch = model.predict_batch(probe)
        scalar = [model.predict_one(probe[i]) for i in range(40)]
        assert batch.tolist() == scalar


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=2**31 - 1))
def test_property_predictions_bounded_by_target_range(seed):
    rng = np.random.default_rng(seed)
    X = rng.random((200, 3))
    y = rng.random(200)  # targets in [0, 1]
    model = GradientBoostingRegressor(n_estimators=6, max_depth=3).fit(X, y)
    predictions = model.predict(X)
    # Squared-loss leaf averages cannot overshoot the target range by much
    # (shrinkage keeps the ensemble inside a slightly padded hull).
    assert predictions.min() > -0.5
    assert predictions.max() < 1.5


class TestLogisticLoss:
    def test_rejects_unknown_loss(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(loss="hinge")

    def test_rejects_non_binary_targets(self):
        X = np.zeros((10, 2))
        y = np.linspace(0, 2, 10)
        with pytest.raises(ValueError, match="0/1"):
            GradientBoostingRegressor(loss="logistic").fit(X, y)

    def test_outputs_probabilities(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(
            n_estimators=20, loss="logistic"
        ).fit(X, y)
        predictions = model.predict(X)
        assert predictions.min() >= 0.0
        assert predictions.max() <= 1.0
        assert ((predictions > 0.5) == (y > 0.5)).mean() > 0.9

    def test_scalar_path_applies_sigmoid(self, xor_data):
        X, y = xor_data
        model = GradientBoostingRegressor(n_estimators=8, loss="logistic").fit(X, y)
        vectorized = model.predict(X[:20])
        scalar = np.array([model.predict_one(X[i]) for i in range(20)])
        assert np.allclose(vectorized, scalar, atol=1e-12)


class TestEarlyStopping:
    def test_rejects_negative_rounds(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(early_stopping_rounds=-1)

    def test_stops_before_budget(self):
        rng = np.random.default_rng(7)
        X = rng.random((2000, 3))
        y = (X[:, 0] > 0.5).astype(float)
        model = GradientBoostingRegressor(
            n_estimators=300, early_stopping_rounds=5
        )
        model.fit(X[:1500], y[:1500], validation=(X[1500:], y[1500:]))
        assert model.num_trees < 300

    def test_no_validation_uses_full_budget(self):
        rng = np.random.default_rng(8)
        X = rng.random((300, 2))
        y = rng.random(300)
        model = GradientBoostingRegressor(
            n_estimators=12, early_stopping_rounds=3
        ).fit(X, y)
        assert model.num_trees == 12


class TestFeatureImportances:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().feature_importances()

    def test_informative_feature_dominates(self):
        rng = np.random.default_rng(9)
        X = rng.random((3000, 4))
        y = (X[:, 2] > 0.5).astype(float)
        model = GradientBoostingRegressor(n_estimators=10).fit(X, y)
        importances = model.feature_importances(4)
        assert importances.argmax() == 2
        assert importances.sum() == pytest.approx(1.0)

    def test_explicit_size(self):
        rng = np.random.default_rng(10)
        X = rng.random((200, 6))
        y = X[:, 0]
        model = GradientBoostingRegressor(n_estimators=4).fit(X, y)
        assert model.feature_importances(6).shape == (6,)
