"""Model and LHR-state serialization round trips."""

import json

import numpy as np
import pytest

from repro.core.gbm import GradientBoostingRegressor
from repro.core.lhr import LhrCache
from repro.core.serialization import (
    gbm_from_dict,
    gbm_to_dict,
    lhr_checkpoint,
    load_lhr_checkpoint,
    load_model,
    restore_lhr,
    save_lhr_checkpoint,
    save_model,
)


@pytest.fixture(scope="module")
def fitted_model():
    rng = np.random.default_rng(0)
    X = rng.random((800, 6))
    y = (X[:, 0] > 0.5).astype(float) + 0.1 * X[:, 1]
    return GradientBoostingRegressor(n_estimators=9, max_depth=3, seed=1).fit(X, y), X


class TestGbmRoundTrip:
    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            gbm_to_dict(GradientBoostingRegressor())

    def test_dict_round_trip_predictions_identical(self, fitted_model):
        model, X = fitted_model
        clone = gbm_from_dict(gbm_to_dict(model))
        assert np.allclose(clone.predict(X), model.predict(X))
        assert clone.predict_one(X[0]) == pytest.approx(model.predict_one(X[0]))
        assert clone.num_trees == model.num_trees

    def test_json_serializable(self, fitted_model):
        model, _ = fitted_model
        json.dumps(gbm_to_dict(model))  # must not raise

    def test_file_round_trip(self, fitted_model, tmp_path):
        model, X = fitted_model
        path = tmp_path / "model.json"
        save_model(model, path)
        clone = load_model(path)
        assert np.allclose(clone.predict(X[:20]), model.predict(X[:20]))

    def test_version_check(self, fitted_model):
        model, _ = fitted_model
        payload = gbm_to_dict(model)
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            gbm_from_dict(payload)

    def test_logistic_loss_preserved(self):
        rng = np.random.default_rng(2)
        X = rng.random((400, 3))
        y = (X[:, 0] > 0.5).astype(float)
        model = GradientBoostingRegressor(
            n_estimators=6, loss="logistic"
        ).fit(X, y)
        clone = gbm_from_dict(gbm_to_dict(model))
        assert clone.loss == "logistic"
        assert np.allclose(clone.predict(X[:10]), model.predict(X[:10]))


class TestLhrCheckpoint:
    @pytest.fixture(scope="class")
    def trained(self, production_trace, production_capacity):
        cache = LhrCache(production_capacity, seed=0)
        cache.process(production_trace)
        return cache

    def test_checkpoint_contents(self, trained):
        checkpoint = lhr_checkpoint(trained)
        assert checkpoint["model"] is not None
        assert checkpoint["delta"] == trained.delta
        assert checkpoint["config"]["num_irts"] == trained.num_irts

    def test_restore_transfers_learned_state(self, trained, production_capacity):
        fresh = LhrCache(production_capacity, seed=0)
        restore_lhr(fresh, lhr_checkpoint(trained))
        assert fresh.model_ready
        assert fresh.delta == trained.delta
        # Warm model scores a row identically to the source model.
        row = fresh.features.vector(123456, now=0.0, num_irts=fresh.num_irts)
        assert fresh._model.predict_one(row) == pytest.approx(
            trained._model.predict_one(row)
        )

    def test_restore_rejects_feature_mismatch(self, trained, production_capacity):
        fresh = LhrCache(production_capacity, num_irts=10, seed=0)
        with pytest.raises(ValueError, match="num_irts"):
            restore_lhr(fresh, lhr_checkpoint(trained))

    def test_file_round_trip(self, trained, production_capacity, tmp_path):
        path = tmp_path / "lhr.json"
        save_lhr_checkpoint(trained, path)
        fresh = load_lhr_checkpoint(LhrCache(production_capacity, seed=0), path)
        assert fresh.model_ready

    def test_warm_start_skips_bootstrap(self, trained, production_trace, production_capacity):
        """A restored cache applies its model from the first request (the
        bootstrap admit-all phase is skipped)."""
        warm = restore_lhr(
            LhrCache(production_capacity, seed=0), lhr_checkpoint(trained)
        )
        cold = LhrCache(production_capacity, seed=0)
        head = production_trace[:800]
        warm.process(head)
        cold.process(head)
        # The cold cache admits everything pre-model; the warm one filters.
        assert warm.admissions <= cold.admissions

    def test_checkpoint_before_training(self, production_capacity):
        cache = LhrCache(production_capacity, seed=0)
        checkpoint = lhr_checkpoint(cache)
        assert checkpoint["model"] is None
        fresh = restore_lhr(LhrCache(production_capacity, seed=0), checkpoint)
        assert not fresh.model_ready
