"""Replay-engine span coverage: packed and object paths, zero effect on
accounting, and the LHR learner phases landing under their chunks."""

from __future__ import annotations

import pytest

from repro.obs import NULL_OBS, MemoryRecorder, MetricsRegistry, Observation, SpanRecorder
from repro.sim import build_policy, simulate
from repro.traces.packed import PackedTrace
from repro.traces.synthetic import irm_trace


@pytest.fixture(scope="module")
def span_trace():
    """Small enough to be fast, large enough to close several HRO
    windows at a 32 KB cache (window = 4x capacity in unique bytes)."""
    return irm_trace(4000, 300, alpha=0.9, mean_size=1 << 10, seed=7, name="sp")


CAPACITY = 32 << 10


def names(recorder):
    return {span.name for span in recorder.spans}


class TestPackedPathSpans:
    def test_spans_only_run_keeps_fast_path_and_results(self, span_trace):
        packed = PackedTrace.from_trace(span_trace)
        baseline = simulate(build_policy("lhr", CAPACITY), packed, obs=NULL_OBS)
        rec = SpanRecorder()
        traced = simulate(
            build_policy("lhr", CAPACITY),
            packed,
            obs=Observation.spans_only(rec),
        )
        # Bit-identical accounting: the packed fast path stayed engaged.
        assert traced.counters() == baseline.counters()
        assert len(rec) > 0

    def test_packed_span_names_and_nesting(self, span_trace):
        rec = SpanRecorder()
        simulate(
            build_policy("lhr", CAPACITY),
            PackedTrace.from_trace(span_trace),
            obs=Observation.spans_only(rec),
        )
        got = names(rec)
        assert {"sim.replay", "sim.chunk"} <= got
        # The LHR pipeline phases all appear once windows close.
        assert {"lhr.window_close", "lhr.drift_check", "lhr.gbm_refit"} <= got
        by_name = {}
        for span in rec.spans:
            by_name.setdefault(span.name, []).append(span)
        replay = by_name["sim.replay"][0]
        assert replay.parent_id is None
        assert replay.args.get("packed") is True
        assert replay.args.get("hits") is not None  # stamped at end
        for chunk in by_name["sim.chunk"]:
            assert chunk.parent_id == replay.span_id
        for close in by_name["lhr.window_close"]:
            parent = next(
                s for spans in by_name.values() for s in spans
                if s.span_id == close.parent_id
            )
            assert parent.name == "sim.chunk"
        for refit in by_name["lhr.gbm_refit"]:
            assert refit.args.get("rows", 0) > 0

    def test_warmup_span_recorded(self, span_trace):
        rec = SpanRecorder()
        simulate(
            build_policy("lru", CAPACITY),
            PackedTrace.from_trace(span_trace),
            warmup_requests=500,
            obs=Observation.spans_only(rec),
        )
        warmups = [s for s in rec.spans if s.name == "sim.warmup"]
        assert len(warmups) == 1
        assert warmups[0].duration > 0


class TestObjectPathSpans:
    def test_observed_run_adds_window_spans(self, span_trace):
        rec = SpanRecorder()
        obs = Observation(
            recorder=MemoryRecorder(), registry=MetricsRegistry(), spans=rec
        )
        result = simulate(
            build_policy("lru", CAPACITY),
            span_trace,
            window_requests=1000,
            obs=obs,
        )
        windows = [s for s in rec.spans if s.name == "sim.window"]
        assert len(windows) == len(result.windows)
        indices = sorted(s.args["index"] for s in windows)
        assert indices == list(range(len(result.windows)))

    def test_observed_results_match_unobserved(self, span_trace):
        baseline = simulate(build_policy("lru", CAPACITY), span_trace)
        rec = SpanRecorder()
        obs = Observation(
            recorder=MemoryRecorder(), registry=MetricsRegistry(), spans=rec
        )
        traced = simulate(build_policy("lru", CAPACITY), span_trace, obs=obs)
        assert traced.counters() == baseline.counters()


class TestDisabledSpans:
    def test_null_obs_records_nothing(self, span_trace):
        result = simulate(
            build_policy("lru", CAPACITY),
            PackedTrace.from_trace(span_trace),
            obs=NULL_OBS,
        )
        assert result.requests == len(span_trace)
        assert len(NULL_OBS.spans) == 0
