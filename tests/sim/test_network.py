"""Network/latency model (Table 3 machinery)."""

import pytest

from repro.policies.classic import LruCache
from repro.policies.base import NoCache
from repro.sim.network import NetworkModel, measure_latency
from repro.traces.synthetic import irm_trace


class TestNetworkModel:
    def test_hit_latency_components(self):
        model = NetworkModel(link_rate_bps=8e9, edge_rtt_s=0.02)
        # 1 MB at 8 Gbps = 1 MiB / 1e9 B/s.
        size = 1 << 20
        assert model.hit_latency(size) == pytest.approx(0.02 + size / 1e9)

    def test_miss_latency_exceeds_hit(self):
        model = NetworkModel()
        assert model.miss_latency(1 << 20) > model.hit_latency(1 << 20)

    def test_latency_monotone_in_size(self):
        model = NetworkModel()
        assert model.hit_latency(2 << 20) > model.hit_latency(1 << 20)
        assert model.miss_latency(2 << 20) > model.miss_latency(1 << 20)


class TestMeasureLatency:
    @pytest.fixture(scope="class")
    def trace(self):
        return irm_trace(2000, 100, mean_size=1 << 20, seed=21)

    def test_better_cache_lower_latency_higher_throughput(self, trace):
        capacity = int(0.3 * trace.unique_bytes())
        cached = measure_latency(LruCache(capacity), trace)
        uncached = measure_latency(NoCache(capacity), trace)
        assert cached.mean_latency_ms < uncached.mean_latency_ms
        assert cached.throughput_gbps > uncached.throughput_gbps
        assert cached.object_hit_ratio > uncached.object_hit_ratio

    def test_percentile_ordering(self, trace):
        report = measure_latency(LruCache(1 << 28), trace)
        assert report.mean_latency_ms <= report.p99_latency_ms
        assert report.p90_latency_ms <= report.p99_latency_ms

    def test_compute_overhead_raises_latency(self, trace):
        base = measure_latency(LruCache(1 << 28), trace)
        loaded = measure_latency(
            LruCache(1 << 28), trace, compute_overhead_s=0.050
        )
        assert loaded.mean_latency_ms == pytest.approx(
            base.mean_latency_ms + 50.0, rel=0.05
        )

    def test_report_row(self, trace):
        row = measure_latency(LruCache(1 << 28), trace).as_row()
        assert set(row) >= {
            "policy",
            "mean_latency_ms",
            "p90_latency_ms",
            "p99_latency_ms",
            "throughput_gbps",
        }

    def test_throughput_bounded_by_link_rate(self, trace):
        report = measure_latency(LruCache(1 << 30), trace)
        assert report.throughput_gbps <= 8.0 + 1e-9


class TestObservationThreading:
    @pytest.fixture(scope="class")
    def trace(self):
        return irm_trace(2000, 100, mean_size=1 << 20, seed=21)

    def test_latency_histogram_and_totals(self, trace):
        from repro.obs import Observation

        obs = Observation()
        policy = LruCache(int(0.3 * trace.unique_bytes()))
        report = measure_latency(policy, trace, obs=obs)
        registry = obs.registry
        hist = registry.get("net_request_latency_seconds")
        assert hist is not None and hist.count == len(trace)
        # Histogram moments agree with the report's summary statistics.
        assert hist.stats.mean * 1e3 == pytest.approx(
            report.mean_latency_ms, rel=1e-6
        )
        assert registry.get("net_requests_total").value == len(trace)
        assert registry.get("net_bytes_served_total").value == sum(
            req.size for req in trace
        )
        assert registry.get("net_throughput_gbps").value == pytest.approx(
            report.throughput_gbps, abs=1e-6
        )

    def test_obs_attached_to_policy(self, trace):
        from repro.obs import Observation

        obs = Observation()
        policy = LruCache(1 << 20)
        measure_latency(policy, trace, obs=obs)
        assert policy.obs is obs

    def test_disabled_obs_changes_nothing(self, trace):
        policy_a = LruCache(1 << 20)
        policy_b = LruCache(1 << 20)
        from repro.obs import Observation

        plain = measure_latency(policy_a, trace)
        observed = measure_latency(policy_b, trace, obs=Observation())
        assert plain.as_row() == observed.as_row()
