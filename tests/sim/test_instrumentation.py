"""InstrumentedPolicy: lifetime and admission diagnostics."""

import pytest

from repro.policies import make_policy
from repro.sim import build_policy, known_policies
from repro.sim.instrumentation import InstrumentedPolicy
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace

#: Trimmed learner settings (mirrors the parallel-sweep suite) so the
#: heavyweight policies train at this trace size.
POLICY_KWARGS = {
    "lrb": {"training_batch": 256, "max_training_data": 1024},
    "lfo": {"window_requests": 200},
}


def req(obj_id, time, size=10):
    return Request(time=time, obj_id=obj_id, size=size)


class TestTransparency:
    def test_hit_miss_behaviour_unchanged(self):
        plain = make_policy("lru", 30)
        wrapped = InstrumentedPolicy(make_policy("lru", 30))
        stream = [req(i % 5, float(i)) for i in range(50)]
        for r in stream:
            assert plain.request(r) == wrapped.request(r)
        assert wrapped.object_hit_ratio == plain.object_hit_ratio

    def test_attribute_passthrough(self):
        wrapped = InstrumentedPolicy(make_policy("lru", 100))
        assert wrapped.capacity == 100
        wrapped.request(req(1, 0.0))
        assert wrapped.contains(1)
        assert wrapped.used_bytes == 10


class TestDiagnostics:
    def test_eviction_age_recorded(self):
        wrapped = InstrumentedPolicy(make_policy("lru", 20))
        wrapped.request(req(1, 0.0))
        wrapped.request(req(2, 5.0))
        wrapped.request(req(3, 12.0))  # evicts 1 at age 12
        assert wrapped.completed_residencies == 1
        assert wrapped.eviction_ages.mean == pytest.approx(12.0)

    def test_hits_per_residency(self):
        wrapped = InstrumentedPolicy(make_policy("lru", 20))
        wrapped.request(req(1, 0.0))
        wrapped.request(req(1, 1.0))
        wrapped.request(req(1, 2.0))
        wrapped.request(req(2, 3.0))
        wrapped.request(req(3, 4.0))  # evicts 1 (served 2 hits)
        assert wrapped.hits_per_residency.mean == pytest.approx(2.0)
        assert wrapped.dead_on_arrival == 0

    def test_dead_on_arrival(self):
        wrapped = InstrumentedPolicy(make_policy("lru", 20))
        wrapped.request(req(1, 0.0))
        wrapped.request(req(2, 1.0))
        wrapped.request(req(3, 2.0))  # evicts 1: zero hits
        assert wrapped.dead_on_arrival == 1
        assert wrapped.dead_on_arrival_ratio == 1.0

    def test_admission_ratio_admit_all(self):
        wrapped = InstrumentedPolicy(make_policy("lru", 1000))
        for i in range(10):
            wrapped.request(req(i, float(i)))
        assert wrapped.admission_ratio == 1.0

    def test_admission_ratio_with_filter(self):
        wrapped = InstrumentedPolicy(make_policy("b-lru", 1000))
        for i in range(10):
            wrapped.request(req(i, float(i)))  # all first sightings
        assert wrapped.admission_ratio == 0.0

    def test_report_shape(self):
        trace = irm_trace(1500, 80, mean_size=1 << 10, seed=21)
        wrapped = InstrumentedPolicy(
            make_policy("gdsf", int(0.1 * trace.unique_bytes()))
        )
        wrapped.process(trace)
        report = wrapped.report()
        assert 0.0 <= report["admission_ratio"] <= 1.0
        assert 0.0 <= report["dead_on_arrival_ratio"] <= 1.0
        assert report["mean_eviction_age_s"] >= 0.0

    def test_admission_filter_reduces_dead_on_arrival(self):
        """The point of admission policies, measured: B-LRU wastes fewer
        admissions than admit-all LRU on a one-hit-heavy workload."""
        from repro.traces import generate_production_trace

        trace = generate_production_trace("cdn-a", scale=0.005, seed=3)
        capacity = int(0.05 * trace.unique_bytes())
        lru = InstrumentedPolicy(make_policy("lru", capacity))
        blru = InstrumentedPolicy(make_policy("b-lru", capacity))
        lru.process(trace)
        blru.process(trace)
        assert blru.dead_on_arrival_ratio < lru.dead_on_arrival_ratio

    def test_works_with_lhr(self, production_trace, production_capacity):
        from repro.core import LhrCache

        wrapped = InstrumentedPolicy(LhrCache(production_capacity, seed=0))
        wrapped.process(production_trace)
        assert wrapped.completed_residencies > 0
        assert 0.0 < wrapped.object_hit_ratio < 1.0


@pytest.fixture(scope="module")
def registry_trace():
    return irm_trace(
        600, 60, alpha=0.9, mean_size=1 << 10, size_sigma=1.0, seed=5
    )


@pytest.fixture(scope="module")
def registry_capacity(registry_trace):
    return max(int(0.2 * registry_trace.unique_bytes()), 1)


class TestEveryRegisteredPolicy:
    """The wrapper's transparency guarantee holds for the full registry —
    classics, learned policies (seeded RNGs included) and LHR variants."""

    @pytest.mark.parametrize("name", known_policies())
    def test_wrapping_never_changes_hit_counts(
        self, name, registry_trace, registry_capacity
    ):
        kwargs = POLICY_KWARGS.get(name, {})
        plain = build_policy(name, registry_capacity, **kwargs)
        wrapped = InstrumentedPolicy(
            build_policy(name, registry_capacity, **kwargs)
        )
        plain.process(registry_trace)
        wrapped.process(registry_trace)
        assert wrapped.hits == plain.hits
        assert wrapped.misses == plain.misses
        assert wrapped.object_hit_ratio == plain.object_hit_ratio
        assert wrapped.used_bytes == plain.used_bytes

    @pytest.mark.parametrize("name", known_policies())
    def test_diagnostics_well_formed(
        self, name, registry_trace, registry_capacity
    ):
        wrapped = InstrumentedPolicy(
            build_policy(
                name, registry_capacity, **POLICY_KWARGS.get(name, {})
            )
        )
        wrapped.process(registry_trace)
        report = wrapped.report()
        assert 0.0 <= report["admission_ratio"] <= 1.0
        assert 0.0 <= report["dead_on_arrival_ratio"] <= 1.0
        assert wrapped.dead_on_arrival <= wrapped.completed_residencies
        if wrapped.completed_residencies:
            assert wrapped.eviction_ages.count == wrapped.completed_residencies
            assert wrapped.eviction_ages.mean >= 0.0
            assert wrapped.hits_per_residency.mean >= 0.0
