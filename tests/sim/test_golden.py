"""Golden regression fixtures: pinned hit ratios for every policy.

``golden_hit_ratios.json`` freezes the exact counters and ratios each
registered policy produces on a fixed-seed synthetic trace.  Any perf
refactor (parallel execution, engine rewrites, data-structure swaps)
must keep these bit-identical: counts are compared exactly, ratios to
1e-9 (they are integer quotients, so drift means behaviour changed).

Regenerate after an *intentional* behaviour change with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/sim/test_golden.py -q

and review the fixture diff like code.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.sim import known_policies, run_comparison
from repro.traces.synthetic import irm_trace

GOLDEN_PATH = Path(__file__).parent / "golden_hit_ratios.json"

#: Trace/grid parameters are part of the fixture contract — change them
#: and every pinned number changes with them.
TRACE_PARAMS = dict(
    num_requests=1200,
    num_contents=100,
    alpha=0.9,
    mean_size=1 << 14,
    size_sigma=1.2,
    seed=7,
    name="golden",
)
CAPACITY_FRACTION = 0.15
GOLDEN_KWARGS = {
    "lrb": {"training_batch": 256, "max_training_data": 1024},
    "lfo": {"window_requests": 200},
}


def compute_golden() -> dict:
    trace = irm_trace(
        TRACE_PARAMS["num_requests"],
        TRACE_PARAMS["num_contents"],
        alpha=TRACE_PARAMS["alpha"],
        mean_size=TRACE_PARAMS["mean_size"],
        size_sigma=TRACE_PARAMS["size_sigma"],
        seed=TRACE_PARAMS["seed"],
        name=TRACE_PARAMS["name"],
    )
    capacity = max(int(CAPACITY_FRACTION * trace.unique_bytes()), 1)
    names = known_policies()
    results = run_comparison(
        trace, names, [capacity], policy_kwargs=GOLDEN_KWARGS
    )
    policies = {
        name: {
            **result.counters(),
            "object_hit_ratio": result.object_hit_ratio,
            "byte_hit_ratio": result.byte_hit_ratio,
        }
        for name, result in zip(names, results)
    }
    return {
        "trace": dict(TRACE_PARAMS),
        "capacity_fraction": CAPACITY_FRACTION,
        "capacity": capacity,
        "policy_kwargs": GOLDEN_KWARGS,
        "policies": policies,
    }


def regenerating() -> bool:
    return os.environ.get("REPRO_REGEN_GOLDEN", "") not in ("", "0")


def test_golden_hit_ratios():
    current = compute_golden()
    if regenerating() or not GOLDEN_PATH.exists():
        GOLDEN_PATH.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH.name}; review and commit the diff")

    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["trace"] == current["trace"], "fixture trace params drifted"
    assert golden["capacity"] == current["capacity"]

    assert sorted(golden["policies"]) == sorted(current["policies"]), (
        "policy registry changed; regenerate the fixture deliberately"
    )
    count_keys = (
        "requests", "hits", "hit_bytes", "total_bytes", "evictions", "admissions"
    )
    mismatches = []
    for name, pinned in golden["policies"].items():
        now = current["policies"][name]
        for key in count_keys:
            if pinned[key] != now[key]:
                mismatches.append(f"{name}.{key}: {pinned[key]} -> {now[key]}")
        for key in ("object_hit_ratio", "byte_hit_ratio"):
            if abs(pinned[key] - now[key]) > 1e-9:
                mismatches.append(f"{name}.{key}: {pinned[key]} -> {now[key]}")
    assert not mismatches, (
        "behaviour drifted from the golden fixture (regenerate only if "
        "intentional):\n" + "\n".join(mismatches)
    )
