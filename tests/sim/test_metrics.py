"""SimulationResult / WindowMetrics ratio properties.

The zero-request edge (empty traces, warmup swallowing every request)
must yield 0.0 ratios, never a ZeroDivisionError; hypothesis sweeps the
counter space to pin the ratios into [0, 1] and the WAN-traffic
complement identity.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import SimulationResult, WindowMetrics


def _result(requests=0, hits=0, hit_bytes=0, total_bytes=0):
    return SimulationResult(
        policy="lru",
        trace="t",
        capacity=1,
        requests=requests,
        hits=hits,
        hit_bytes=hit_bytes,
        total_bytes=total_bytes,
    )


class TestZeroRequestEdge:
    def test_empty_result_ratios_are_zero(self):
        result = _result()
        assert result.object_hit_ratio == 0.0
        assert result.byte_hit_ratio == 0.0
        assert result.wan_traffic_ratio == 0.0
        assert result.wan_traffic_bytes == 0

    def test_empty_window_ratios_are_zero(self):
        window = WindowMetrics(index=0)
        assert window.hit_ratio == 0.0
        assert window.byte_hit_ratio == 0.0


@st.composite
def counters(draw):
    requests = draw(st.integers(min_value=0, max_value=10**9))
    hits = draw(st.integers(min_value=0, max_value=requests))
    total_bytes = draw(st.integers(min_value=0, max_value=10**12))
    hit_bytes = draw(st.integers(min_value=0, max_value=total_bytes))
    return requests, hits, hit_bytes, total_bytes


class TestRatioProperties:
    @given(counters())
    def test_ratios_stay_in_unit_interval(self, counts):
        requests, hits, hit_bytes, total_bytes = counts
        result = _result(requests, hits, hit_bytes, total_bytes)
        assert 0.0 <= result.object_hit_ratio <= 1.0
        assert 0.0 <= result.byte_hit_ratio <= 1.0
        assert 0.0 <= result.wan_traffic_ratio <= 1.0

    @given(counters())
    def test_wan_traffic_complements_byte_hits(self, counts):
        requests, hits, hit_bytes, total_bytes = counts
        result = _result(requests, hits, hit_bytes, total_bytes)
        assert result.wan_traffic_bytes == total_bytes - hit_bytes
        if total_bytes:
            assert result.byte_hit_ratio + result.wan_traffic_ratio == (
                pytest.approx(1.0)
            )
        else:
            # Empty trace: both ratios collapse to 0.0, not to a 1.0 sum.
            assert result.byte_hit_ratio == result.wan_traffic_ratio == 0.0

    @given(counters())
    def test_window_ratios_match_result_formulas(self, counts):
        requests, hits, hit_bytes, total_bytes = counts
        window = WindowMetrics(
            index=0,
            requests=requests,
            hits=hits,
            hit_bytes=hit_bytes,
            total_bytes=total_bytes,
        )
        result = _result(requests, hits, hit_bytes, total_bytes)
        assert window.hit_ratio == result.object_hit_ratio
        assert window.byte_hit_ratio == result.byte_hit_ratio
