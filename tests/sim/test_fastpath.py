"""Columnar fast-path equivalence: scalar kernels vs the object path.

The contract under test (the heart of the array-native replay engine):
for every registered policy, replaying a ``PackedTrace`` through
``request_scalar`` produces the *bit-identical* hit/miss stream, counter
set, window series and metadata peaks as replaying the reference
``Trace`` through ``request`` — and instrumentation (decision tracing,
observation) transparently forces the reference path.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import MemoryRecorder, MetricsRegistry, Observation
from repro.obs.trace import TraceConfig
from repro.policies.base import CachePolicy
from repro.policies.classic import LruCache
from repro.sim import known_policies, run_comparison, simulate
from repro.sim.engine import replay_into
from repro.sim.metrics import SimulationResult
from repro.sim.runner import build_policy
from repro.traces.packed import PackedTrace
from repro.traces.synthetic import irm_trace

GOLDEN_PATH = Path(__file__).parent / "golden_hit_ratios.json"

#: Constructor overrides matching the golden fixture (fast policies for
#: the slow learners' internals).
POLICY_KWARGS = {
    "lrb": {"training_batch": 256, "max_training_data": 1024},
    "lfo": {"window_requests": 200},
}


@pytest.fixture(scope="module")
def fixture_trace():
    return irm_trace(
        1200, 100, alpha=0.9, mean_size=1 << 14, size_sigma=1.2, seed=7,
        name="golden",
    )


@pytest.fixture(scope="module")
def fixture_capacity(fixture_trace):
    return max(int(0.15 * fixture_trace.unique_bytes()), 1)


def _build(name, capacity):
    return build_policy(name, capacity, **POLICY_KWARGS.get(name, {}))


@pytest.mark.parametrize("name", known_policies())
def test_hit_stream_bit_identical(name, fixture_trace, fixture_capacity):
    """Per-request verdicts — not just totals — must agree exactly."""
    reference = _build(name, fixture_capacity)
    fast = _build(name, fixture_capacity)
    packed = PackedTrace.from_trace(fixture_trace)
    obj_ids, sizes, times = packed.scalar_columns()
    for index, req in enumerate(fixture_trace):
        hit_ref = reference.request(req)
        hit_fast = fast.request_scalar(
            obj_ids[index], sizes[index], times[index], index
        )
        assert hit_ref == hit_fast, f"{name}: verdicts diverge at request {index}"
    assert reference.hits == fast.hits
    assert reference.misses == fast.misses
    assert reference.hit_bytes == fast.hit_bytes
    assert reference.miss_bytes == fast.miss_bytes
    assert reference.evictions == fast.evictions
    assert reference.admissions == fast.admissions
    assert reference.used_bytes == fast.used_bytes
    assert reference.cached_objects() == fast.cached_objects()
    assert reference.metadata_bytes() == fast.metadata_bytes()


@pytest.mark.parametrize("name", known_policies())
def test_engine_results_bit_identical(name, fixture_trace, fixture_capacity):
    """Full engine runs (windows, warmup, metadata probes) must agree."""
    packed = PackedTrace.from_trace(fixture_trace)
    ref = simulate(
        _build(name, fixture_capacity), fixture_trace,
        window_requests=300, warmup_requests=100, metadata_probe_interval=250,
    )
    fast = simulate(
        _build(name, fixture_capacity), packed,
        window_requests=300, warmup_requests=100, metadata_probe_interval=250,
    )
    assert ref.counters() == fast.counters()
    assert ref.peak_metadata_bytes == fast.peak_metadata_bytes
    assert [
        (w.requests, w.hits, w.hit_bytes, w.total_bytes) for w in ref.windows
    ] == [(w.requests, w.hits, w.hit_bytes, w.total_bytes) for w in fast.windows]


def test_fast_path_matches_golden_fixture():
    """The packed replay reproduces the pinned golden hit ratios exactly."""
    if not GOLDEN_PATH.exists():
        pytest.skip("golden fixture not generated yet")
    golden = json.loads(GOLDEN_PATH.read_text())
    params = golden["trace"]
    trace = irm_trace(
        params["num_requests"], params["num_contents"], alpha=params["alpha"],
        mean_size=params["mean_size"], size_sigma=params["size_sigma"],
        seed=params["seed"], name=params["name"],
    )
    names = known_policies()
    results = run_comparison(
        PackedTrace.from_trace(trace),
        names,
        [golden["capacity"]],
        policy_kwargs=golden["policy_kwargs"],
    )
    for name, result in zip(names, results):
        pinned = golden["policies"][name]
        for key in (
            "requests", "hits", "hit_bytes", "total_bytes", "evictions",
            "admissions",
        ):
            assert pinned[key] == result.counters()[key], f"{name}.{key}"
        assert abs(pinned["object_hit_ratio"] - result.object_hit_ratio) < 1e-9


def test_heartbeat_sequence_identical(fixture_trace, fixture_capacity):
    packed = PackedTrace.from_trace(fixture_trace)
    beats_ref, beats_fast = [], []
    simulate(
        _build("lru", fixture_capacity), fixture_trace,
        heartbeat=beats_ref.append, heartbeat_interval=256,
    )
    simulate(
        _build("lru", fixture_capacity), packed,
        heartbeat=beats_fast.append, heartbeat_interval=256,
    )
    assert beats_ref == beats_fast
    assert beats_ref  # the interval must actually fire


def test_warmup_beyond_trace_measures_nothing(fixture_trace, fixture_capacity):
    packed = PackedTrace.from_trace(fixture_trace)
    result = SimulationResult(policy="lru", trace="golden", capacity=fixture_capacity)
    replay_into(
        _build("lru", fixture_capacity), packed, result,
        warmup_requests=len(fixture_trace) + 50,
    )
    assert result.requests == 0
    assert result.hits == 0
    assert result.total_bytes == 0


#: Every policy shipping native ``request_scalar`` + ``replay_span``
#: kernels; instrumentation must force all of them back onto the shims.
NATIVE_KERNEL_POLICIES = ["lru", "lru-2", "lru-4", "lfu-da", "b-lru", "lhr"]


class TestInstrumentationForcesReferencePath:
    @pytest.mark.parametrize("name", NATIVE_KERNEL_POLICIES)
    def test_tracer_pins_the_shim(self, name, fixture_capacity):
        policy = _build(name, fixture_capacity)
        assert "request_scalar" not in policy.__dict__  # native kernels active
        assert "replay_span" not in policy.__dict__
        policy.attach_tracer(TraceConfig().build())
        assert "request_scalar" in policy.__dict__  # shims pinned
        assert "replay_span" in policy.__dict__
        policy.attach_tracer(None)
        assert "request_scalar" not in policy.__dict__  # kernels restored
        assert "replay_span" not in policy.__dict__

    @pytest.mark.parametrize("name", NATIVE_KERNEL_POLICIES)
    def test_observation_pins_the_shim(self, name, fixture_capacity):
        policy = _build(name, fixture_capacity)
        obs = Observation(recorder=MemoryRecorder(), registry=MetricsRegistry())
        policy.attach_observation(obs)
        assert "request_scalar" in policy.__dict__
        assert "replay_span" in policy.__dict__

    @pytest.mark.parametrize("name", NATIVE_KERNEL_POLICIES)
    def test_observed_run_matches_kernel_run(
        self, name, fixture_trace, fixture_capacity
    ):
        """The shim tier an instrumented run falls back to must agree
        with the native kernels to the counter bit."""
        packed = PackedTrace.from_trace(fixture_trace)
        fast = simulate(_build(name, fixture_capacity), packed)
        obs = Observation(recorder=MemoryRecorder(), registry=MetricsRegistry())
        observed = simulate(_build(name, fixture_capacity), packed, obs=obs)
        assert fast.counters() == observed.counters()

    def test_traced_packed_run_records_decisions(
        self, fixture_trace, fixture_capacity
    ):
        packed = PackedTrace.from_trace(fixture_trace)
        ref = simulate(
            _build("lru", fixture_capacity), fixture_trace,
            tracer=TraceConfig().build(),
        )
        fast = simulate(
            _build("lru", fixture_capacity), packed,
            tracer=TraceConfig().build(),
        )
        assert ref.counters() == fast.counters()
        assert len(fast.decision_trace.records) == len(ref.decision_trace.records)
        assert fast.decision_trace.records[-1] == ref.decision_trace.records[-1]


class TestSubclassSafety:
    def test_hook_override_survives_the_fast_path(self, fixture_trace):
        """A subclass overriding a hook must not inherit the parent's
        native kernel (which inlines the parent's hooks)."""
        hits = []

        class SpyLru(LruCache):
            def _on_hit(self, req):
                hits.append(req.obj_id)
                super()._on_hit(req)

        policy = SpyLru(10**12)
        assert policy._scalar_kernel_blocked
        packed = PackedTrace.from_trace(fixture_trace)
        result = simulate(policy, packed)
        assert len(hits) == result.hits > 0

    @pytest.mark.parametrize("name", ["lru-2", "lfu-da", "b-lru"])
    def test_span_kernel_classes_block_foreign_subclasses(
        self, name, fixture_trace, fixture_capacity
    ):
        """Same discipline for the newer span-kernel policies: a hook
        override in a foreign subclass forces the shim tier, and the
        shimmed replay still matches the native kernel's counters."""
        base_cls = type(_build(name, fixture_capacity))
        hits = []

        def _on_hit(self, req):
            hits.append(req.obj_id)
            base_cls._on_hit(self, req)

        spy_cls = type(f"Spy{base_cls.__name__}", (base_cls,), {"_on_hit": _on_hit})
        policy = spy_cls(fixture_capacity)
        assert policy._scalar_kernel_blocked
        assert "request_scalar" in policy.__dict__  # base shims pinned
        assert "replay_span" in policy.__dict__
        packed = PackedTrace.from_trace(fixture_trace)
        result = simulate(policy, packed)
        assert len(hits) == result.hits > 0
        # Same constructor defaults on both sides of the comparison.
        native = simulate(base_cls(fixture_capacity), packed)
        assert result.counters() == native.counters()

    def test_request_override_survives_the_fast_path(self, fixture_trace):
        calls = []

        class CountingLru(LruCache):
            def request(self, req):
                calls.append(req.index)
                return super().request(req)

        policy = CountingLru(10**12)
        simulate(policy, PackedTrace.from_trace(fixture_trace))
        assert calls == list(range(len(fixture_trace)))

    def test_base_shim_passes_the_real_index(self):
        seen = []

        class IndexSpy(CachePolicy):
            name = "index-spy"

            def _on_access(self, req):
                seen.append(req.index)

            def _select_victim(self, incoming):  # pragma: no cover
                raise AssertionError("never evicts")

        policy = IndexSpy(10**12)
        packed = PackedTrace.from_arrays([0.0, 1.0], [1, 2], [10, 10])
        simulate(policy, packed)
        assert seen == [0, 1]
