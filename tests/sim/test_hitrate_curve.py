"""Reuse distances and the exact LRU hit-rate curve (Mattson)."""

import numpy as np
import pytest

from repro.policies.classic import LruCache
from repro.sim.hitrate_curve import (
    COLD,
    ReuseDistanceAnalyzer,
    _FenwickTree,
    lru_hit_rate_curve,
)
from repro.traces.request import Trace
from repro.traces.synthetic import irm_trace


class TestFenwick:
    def test_prefix_and_range(self):
        tree = _FenwickTree(10)
        for i, value in enumerate([3, 0, 5, 2, 0, 0, 7, 0, 0, 1]):
            if value:
                tree.add(i, value)
        assert tree.prefix_sum(0) == 3
        assert tree.prefix_sum(3) == 10
        assert tree.range_sum(2, 6) == 14
        assert tree.range_sum(5, 3) == 0

    def test_negative_updates(self):
        tree = _FenwickTree(4)
        tree.add(1, 10)
        tree.add(1, -10)
        assert tree.prefix_sum(3) == 0


class TestReuseDistances:
    def test_cold_requests_infinite(self):
        trace = Trace.from_tuples([(0.0, 1, 10), (1.0, 2, 10)])
        distances = ReuseDistanceAnalyzer(trace).distances()
        assert distances[0] == COLD and distances[1] == COLD

    def test_immediate_rerequest_zero_distance(self):
        trace = Trace.from_tuples([(0.0, 1, 10), (1.0, 1, 10)])
        distances = ReuseDistanceAnalyzer(trace).distances()
        assert distances[1] == 0.0

    def test_distinct_bytes_between(self):
        # 1, 2, 3, 1: distance of the second "1" is size(2)+size(3).
        trace = Trace.from_tuples(
            [(0.0, 1, 10), (1.0, 2, 20), (2.0, 3, 30), (3.0, 1, 10)]
        )
        distances = ReuseDistanceAnalyzer(trace).distances()
        assert distances[3] == 50.0

    def test_duplicates_counted_once(self):
        # 1, 2, 2, 1: content 2 counts once, not twice.
        trace = Trace.from_tuples(
            [(0.0, 1, 10), (1.0, 2, 20), (2.0, 2, 20), (3.0, 1, 10)]
        )
        distances = ReuseDistanceAnalyzer(trace).distances()
        assert distances[3] == 20.0


class TestCurve:
    @pytest.fixture(scope="class")
    def workload(self):
        return irm_trace(6000, 200, alpha=0.9, mean_size=1 << 13, size_sigma=1.2, seed=3)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            lru_hit_rate_curve(Trace([]))

    def test_rejects_bad_capacity_grid(self, workload):
        with pytest.raises(ValueError):
            lru_hit_rate_curve(workload, capacities=[0, 100])

    def test_monotone_in_capacity(self, workload):
        curve = lru_hit_rate_curve(workload)
        assert (np.diff(curve.object_hit_ratios) >= -1e-12).all()
        assert (np.diff(curve.byte_hit_ratios) >= -1e-12).all()

    @pytest.mark.parametrize("fraction", [0.03, 0.1, 0.3])
    def test_matches_direct_simulation(self, workload, fraction):
        # Byte-LRU is not exactly a stack algorithm for variable sizes
        # (eviction overshoot), but with capacity-aware distances the
        # curve tracks simulation to well under a hit-ratio point.
        capacity = int(fraction * workload.unique_bytes())
        curve = lru_hit_rate_curve(workload, capacities=[capacity])
        lru = LruCache(capacity)
        lru.process(workload)
        assert curve.object_hit_ratios[0] == pytest.approx(
            lru.object_hit_ratio, abs=0.01
        )
        assert curve.byte_hit_ratios[0] == pytest.approx(
            lru.byte_hit_ratio, abs=0.01
        )

    @pytest.mark.parametrize("frames", [10, 40, 120])
    def test_exact_for_unit_sizes(self, frames):
        trace = irm_trace(5000, 200, alpha=0.9, equal_size=1, seed=6)
        curve = lru_hit_rate_curve(trace, capacities=[frames])
        lru = LruCache(frames)
        lru.process(trace)
        assert curve.object_hit_ratios[0] == pytest.approx(lru.object_hit_ratio)

    def test_ceiling_is_compulsory_miss_limit(self, workload):
        from repro.bounds import infinite_cap

        curve = lru_hit_rate_curve(
            workload, capacities=[workload.unique_bytes() * 2]
        )
        ceiling = infinite_cap(workload.requests)
        assert curve.object_hit_ratios[-1] == pytest.approx(ceiling.hit_ratio)

    def test_interpolation_and_inverse(self, workload):
        curve = lru_hit_rate_curve(workload)
        mid_capacity = int(curve.capacities[len(curve.capacities) // 2])
        hit = curve.object_hit_at(mid_capacity)
        assert 0.0 <= hit <= 1.0
        needed = curve.capacity_for_hit_ratio(hit - 0.01)
        assert needed <= mid_capacity

    def test_unreachable_target(self, workload):
        curve = lru_hit_rate_curve(workload)
        assert curve.capacity_for_hit_ratio(0.9999) == float("inf")
