"""Parallel sweep executor: serial/parallel equivalence, grid ordering,
failure containment, and policy determinism.

The equivalence tests are the load-bearing part of the parallel engine:
process-pool execution must be *bit-identical* to serial execution for
every registered policy, or every speedup silently changes the science.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.obs import MemoryRecorder, MetricsRegistry, Observation
from repro.policies import POLICY_REGISTRY
from repro.policies.classic import LruCache
from repro.sim import (
    CellSpec,
    PackedTrace,
    SweepCellError,
    known_policies,
    run_comparison,
    run_sweep,
)
from repro.traces.packed import SharedTraceBuffers, live_segment_names
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace

#: Trimmed learner settings so the heavyweight policies train at this
#: trace size without dominating suite wall time.
SWEEP_KWARGS = {
    "lrb": {"training_batch": 256, "max_training_data": 1024},
    "lfo": {"window_requests": 200},
}

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs the fork start method to inherit test-local policies",
)


@pytest.fixture(scope="module")
def sweep_trace():
    return irm_trace(
        600, 60, alpha=0.9, mean_size=1 << 10, size_sigma=1.0, seed=5, name="sweep"
    )


@pytest.fixture(scope="module")
def sweep_capacity(sweep_trace):
    return max(int(0.2 * sweep_trace.unique_bytes()), 1)


def result_key(result):
    """Everything equivalence must preserve, ratios included."""
    return (
        result.policy,
        result.capacity,
        result.counters(),
        result.object_hit_ratio,
        result.byte_hit_ratio,
        result.window_series(),
    )


class TestPackedTrace:
    def test_roundtrip(self, sweep_trace):
        packed = PackedTrace.from_trace(sweep_trace)
        assert len(packed) == len(sweep_trace)
        rebuilt = packed.unpack()
        assert rebuilt.name == sweep_trace.name
        assert rebuilt.metadata == sweep_trace.metadata
        assert rebuilt.requests == sweep_trace.requests

    def test_roundtrip_preserves_indices(self, sweep_trace):
        rebuilt = PackedTrace.from_trace(sweep_trace).unpack()
        assert [req.index for req in rebuilt] == list(range(len(sweep_trace)))


class TestEquivalence:
    def test_every_policy_serial_vs_parallel(self, sweep_trace, sweep_capacity):
        """The headline guarantee: parallel == serial for ALL policies,
        down to per-window hit series and ratio bits."""
        names = known_policies()
        serial = run_comparison(
            sweep_trace,
            names,
            [sweep_capacity],
            window_requests=100,
            policy_kwargs=SWEEP_KWARGS,
        )
        parallel = run_comparison(
            sweep_trace,
            names,
            [sweep_capacity],
            window_requests=100,
            policy_kwargs=SWEEP_KWARGS,
            parallel=2,
        )
        assert [result_key(r) for r in serial] == [result_key(r) for r in parallel]

    def test_multi_capacity_grid_with_warmup(self, sweep_trace, sweep_capacity):
        names = ["lru", "lhd", "adaptsize", "w-tinylfu"]
        kwargs = dict(
            window_requests=150, warmup_requests=100, policy_kwargs=SWEEP_KWARGS
        )
        serial = run_comparison(
            sweep_trace, names, [sweep_capacity, 2 * sweep_capacity], **kwargs
        )
        parallel = run_comparison(
            sweep_trace,
            names,
            [sweep_capacity, 2 * sweep_capacity],
            parallel=3,
            **kwargs,
        )
        assert [result_key(r) for r in serial] == [result_key(r) for r in parallel]


def normalized_events(obs):
    """Events minus the nondeterministic parts: ``seq`` (recorder-local)
    and wall-clock ``*_seconds`` durations."""
    return [
        {
            k: v
            for k, v in event.items()
            if k != "seq" and not k.endswith("_seconds")
        }
        for event in obs.recorder.events
    ]


class TestObservedEquivalence:
    """Instrumentation must not break the bit-equivalence guarantee:
    with a recorder attached, parallel and serial sweeps produce the
    same results, the same grid-ordered event stream, and the same
    deterministic registry contents."""

    NAMES = ["lru", "lhr", "gdsf"]

    def _run(self, trace, capacity, parallel):
        obs = Observation(recorder=MemoryRecorder(), registry=MetricsRegistry())
        results = run_comparison(
            trace,
            self.NAMES,
            [capacity],
            window_requests=200,
            policy_kwargs=SWEEP_KWARGS,
            parallel=parallel,
            obs=obs,
        )
        return results, obs

    def test_parallel_matches_serial_with_recorder_on(
        self, sweep_trace, sweep_capacity
    ):
        serial_results, serial_obs = self._run(sweep_trace, sweep_capacity, 0)
        parallel_results, parallel_obs = self._run(sweep_trace, sweep_capacity, 2)
        assert [result_key(r) for r in serial_results] == [
            result_key(r) for r in parallel_results
        ]
        serial_events = normalized_events(serial_obs)
        assert serial_events == normalized_events(parallel_obs)
        # The stream actually observed something: every cell started and
        # finished, and the replay loop reported its windows.
        types = [e["event"] for e in serial_events]
        assert types.count("sweep.cell_start") == len(self.NAMES)
        assert types.count("sweep.cell_done") == len(self.NAMES)
        assert "sim.window" in types

    def test_registries_agree_on_deterministic_metrics(
        self, sweep_trace, sweep_capacity
    ):
        _, serial_obs = self._run(sweep_trace, sweep_capacity, 0)
        _, parallel_obs = self._run(sweep_trace, sweep_capacity, 2)
        serial = serial_obs.registry.as_dict()
        parallel = parallel_obs.registry.as_dict()
        assert set(serial) == set(parallel)
        for name in serial:
            if name.endswith("_seconds"):
                # Durations differ; the observation *count* must not.
                assert serial[name]["count"] == parallel[name]["count"], name
            else:
                assert serial[name] == parallel[name], name

    def test_failed_cell_emits_event_in_both_modes(
        self, sweep_trace, sweep_capacity, exploding_policy
    ):
        obs = Observation(recorder=MemoryRecorder())
        with pytest.raises(SweepCellError):
            run_comparison(
                sweep_trace,
                [exploding_policy, "lru"],
                [sweep_capacity],
                obs=obs,
            )
        failed = [
            e for e in obs.recorder.events if e["event"] == "sweep.cell_failed"
        ]
        assert len(failed) == 1
        assert failed[0]["policy"] == exploding_policy
        assert "synthetic mid-simulation failure" in failed[0]["error"]
        done = [
            e for e in obs.recorder.events if e["event"] == "sweep.cell_done"
        ]
        assert [e["policy"] for e in done] == ["lru"]

    @pytest.mark.parametrize("parallel", [0, 2])
    def test_event_fields_stamp_whole_stream(
        self, sweep_trace, sweep_capacity, parallel
    ):
        # The workload lab tags each sweep's events (scenario, lab_run);
        # every event of the stream must carry the tag in both modes.
        obs = Observation(recorder=MemoryRecorder())
        run_comparison(
            sweep_trace,
            ["lru", "lhr"],
            [sweep_capacity],
            policy_kwargs=SWEEP_KWARGS,
            parallel=parallel,
            obs=obs,
            event_fields={"scenario": "churn", "lab_run": 4},
        )
        assert obs.recorder.events
        for event in obs.recorder.events:
            assert event["scenario"] == "churn"
            assert event["lab_run"] == 4

    def test_no_event_fields_leaves_stream_untagged(
        self, sweep_trace, sweep_capacity
    ):
        obs = Observation(recorder=MemoryRecorder())
        run_comparison(
            sweep_trace, ["lru"], [sweep_capacity],
            policy_kwargs=SWEEP_KWARGS, obs=obs,
        )
        assert obs.recorder.events
        assert all("scenario" not in e for e in obs.recorder.events)


class TestGridOrder:
    def test_results_in_capacity_major_grid_order(self, sweep_trace, sweep_capacity):
        names = ["gdsf", "lru", "lfu"]
        capacities = [2 * sweep_capacity, sweep_capacity]
        results = run_comparison(sweep_trace, names, capacities, parallel=2)
        expected = [(c, n) for c in capacities for n in names]
        assert [(r.capacity, r.policy) for r in results] == expected
        assert [r.cell_index for r in results] == list(range(len(expected)))

    def test_explicit_spec_indices_win(self, sweep_trace, sweep_capacity):
        # Reversed submission order still comes back sorted by index.
        specs = [
            CellSpec.make("lfu", sweep_capacity, index=1),
            CellSpec.make("lru", sweep_capacity, index=0),
        ]
        results = run_sweep(sweep_trace, specs, jobs=2)
        assert [r.policy for r in results] == ["lru", "lfu"]

    def test_duplicate_indices_rejected(self, sweep_trace, sweep_capacity):
        specs = [
            CellSpec.make("lru", sweep_capacity, index=0),
            CellSpec.make("lfu", sweep_capacity, index=0),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep(sweep_trace, specs, jobs=2)

    def test_empty_grid(self, sweep_trace):
        assert run_sweep(sweep_trace, [], jobs=2) == []


class _ExplodingCache(LruCache):
    """LRU that detonates mid-simulation after a fixed request count."""

    name = "exploding"

    def __init__(self, capacity: int, fail_after: int = 20):
        super().__init__(capacity)
        self._fail_after = fail_after
        self._seen = 0

    def request(self, req: Request) -> bool:
        self._seen += 1
        if self._seen > self._fail_after:
            raise RuntimeError(f"synthetic mid-simulation failure at {self._seen}")
        return super().request(req)


@pytest.fixture()
def exploding_policy():
    POLICY_REGISTRY["exploding"] = _ExplodingCache
    try:
        yield "exploding"
    finally:
        POLICY_REGISTRY.pop("exploding", None)


class TestFailureContainment:
    def test_worker_constructor_error_names_cell(self, sweep_trace, sweep_capacity):
        with pytest.raises(SweepCellError) as excinfo:
            run_comparison(
                sweep_trace,
                ["lru", "lfu"],
                [sweep_capacity],
                policy_kwargs={"lru": {"bogus_kwarg": 1}},
                parallel=2,
            )
        error = excinfo.value
        assert len(error.failures) == 1
        failure = error.failures[0]
        assert failure.policy == "lru"
        assert failure.capacity == sweep_capacity
        assert "bogus_kwarg" in failure.traceback
        # The sibling cell completed and its result survived.
        surviving = [r for r in error.results if r is not None]
        assert [r.policy for r in surviving] == ["lfu"]
        assert surviving[0].requests == len(sweep_trace)

    @requires_fork
    def test_mid_simulation_error_does_not_poison_siblings(
        self, sweep_trace, sweep_capacity, exploding_policy
    ):
        # fork inherits the test-registered policy; both exploding cells
        # fail, all four sibling cells still produce full results.
        fork = multiprocessing.get_context("fork")
        capacities = [sweep_capacity, 2 * sweep_capacity]
        with pytest.raises(SweepCellError) as excinfo:
            run_comparison(
                sweep_trace,
                ["lru", exploding_policy, "lfu"],
                capacities,
                parallel=2,
                mp_context=fork,
            )
        error = excinfo.value
        assert sorted(f.policy for f in error.failures) == ["exploding", "exploding"]
        assert sorted(f.capacity for f in error.failures) == sorted(capacities)
        assert all("synthetic mid-simulation failure" in f.traceback
                   for f in error.failures)
        surviving = [r for r in error.results if r is not None]
        assert len(surviving) == 4
        assert all(r.requests == len(sweep_trace) for r in surviving)

    def test_serial_mode_same_error_contract(
        self, sweep_trace, sweep_capacity, exploding_policy
    ):
        with pytest.raises(SweepCellError) as excinfo:
            run_comparison(
                sweep_trace, [exploding_policy, "lru"], [sweep_capacity]
            )
        error = excinfo.value
        assert error.failures[0].policy == "exploding"
        assert str(sweep_capacity) in str(error)
        assert [r.policy for r in error.results if r is not None] == ["lru"]

    def test_unknown_policy_fails_fast_in_driver(self, sweep_trace, sweep_capacity):
        with pytest.raises(ValueError, match="unknown policies"):
            run_comparison(sweep_trace, ["lru", "nope"], [sweep_capacity], parallel=2)


class TestDeterminism:
    """Two runs of the same seeded policy must agree bit-for-bit —
    the precondition for any serial/parallel equivalence claim."""

    RNG_POLICIES = ["random", "lhd", "hyperbolic", "adaptsize", "lrb", "lhr"]

    @pytest.mark.parametrize("name", RNG_POLICIES)
    def test_repeated_runs_identical(self, sweep_trace, sweep_capacity, name):
        runs = [
            run_comparison(
                sweep_trace,
                [name],
                [sweep_capacity],
                window_requests=100,
                policy_kwargs=SWEEP_KWARGS,
            )[0]
            for _ in range(2)
        ]
        assert result_key(runs[0]) == result_key(runs[1])

    def test_repeated_parallel_runs_identical(self, sweep_trace, sweep_capacity):
        runs = [
            run_comparison(
                sweep_trace,
                self.RNG_POLICIES,
                [sweep_capacity],
                policy_kwargs=SWEEP_KWARGS,
                parallel=2,
            )
            for _ in range(2)
        ]
        assert [result_key(r) for r in runs[0]] == [result_key(r) for r in runs[1]]


class TestSweepHeartbeats:
    """Live-progress plumbing: heartbeats reach the tracker from both
    execution paths, and monitoring never changes results."""

    def _specs(self, sweep_capacity):
        return [
            CellSpec.make("lru", sweep_capacity, index=0),
            CellSpec.make("fifo", sweep_capacity, index=1),
        ]

    def test_inline_heartbeats_feed_tracker(self, sweep_trace, sweep_capacity):
        from repro.obs.server import ProgressTracker

        tracker = ProgressTracker()
        results = run_sweep(
            sweep_trace,
            self._specs(sweep_capacity),
            progress=tracker,
            heartbeat_interval_requests=100,
        )
        snap = tracker.snapshot()
        assert snap["cells_done"] == 2
        assert snap["cells_failed"] == 0
        # Every cell replayed the whole trace and reported a final ratio.
        for result, cell in zip(results, snap["cells"]):
            assert cell["state"] == "done"
            assert cell["requests"] == result.requests
            # as_dict rounds ratios to 6 places for the JSON payload.
            assert cell["hit_ratio"] == round(result.object_hit_ratio, 6)
            assert cell["rss_bytes"] > 0  # at least one live heartbeat landed

    @requires_fork
    def test_pooled_heartbeats_cross_process_boundary(
        self, sweep_trace, sweep_capacity
    ):
        from repro.obs.server import ProgressTracker

        ctx = multiprocessing.get_context("fork")
        tracker = ProgressTracker(registry=MetricsRegistry())
        results = run_sweep(
            sweep_trace,
            self._specs(sweep_capacity),
            jobs=2,
            mp_context=ctx,
            progress=tracker,
            heartbeat_interval_requests=100,
        )
        snap = tracker.snapshot()
        assert snap["cells_done"] == 2
        assert snap["requests_replayed"] == sum(r.requests for r in results)
        assert all(c["rss_bytes"] > 0 for c in snap["cells"])
        assert tracker.registry.get("sweep_cells_done").value == 2

    def test_progress_does_not_change_results(self, sweep_trace, sweep_capacity):
        from repro.obs.server import ProgressTracker

        specs = self._specs(sweep_capacity)
        plain = run_sweep(sweep_trace, specs)
        monitored = run_sweep(
            sweep_trace,
            specs,
            progress=ProgressTracker(),
            heartbeat_interval_requests=50,
        )
        assert [result_key(r) for r in plain] == [
            result_key(r) for r in monitored
        ]

    def test_failed_cell_marked_on_tracker(self, sweep_trace, sweep_capacity):
        from repro.obs.server import ProgressTracker

        specs = [
            CellSpec.make("lru", sweep_capacity, index=0),
            CellSpec.make(
                "lru", sweep_capacity, {"unknown_kwarg": True}, index=1
            ),
        ]
        tracker = ProgressTracker()
        with pytest.raises(SweepCellError):
            run_sweep(
                sweep_trace,
                specs,
                progress=tracker,
                heartbeat_interval_requests=100,
            )
        snap = tracker.snapshot()
        assert snap["cells_done"] == 1
        assert snap["cells_failed"] == 1
        failed = [c for c in snap["cells"] if c["state"] == "failed"]
        assert failed and failed[0]["error"]

    def test_no_tracker_means_no_heartbeat_machinery(
        self, sweep_trace, sweep_capacity
    ):
        """With progress=None the engine gets interval 0 — the seed path."""
        calls = []
        import repro.sim.parallel as parallel_module

        original = parallel_module._heartbeat_for

        def spy(spec, policy, interval, sink):
            calls.append(interval)
            return original(spec, policy, interval, sink)

        parallel_module._heartbeat_for = spy
        try:
            run_sweep(sweep_trace, self._specs(sweep_capacity))
        finally:
            parallel_module._heartbeat_for = original
        assert calls == [0, 0]


class TestSharedMemorySweep:
    """The zero-copy transport: pooled sweeps ship a descriptor, not the
    trace, and the driver never leaks a segment — normal exit, worker
    failure, or KeyboardInterrupt."""

    def test_pooled_sweep_uses_shared_memory(
        self, sweep_trace, sweep_capacity, monkeypatch
    ):
        created = []
        original_create = SharedTraceBuffers.create.__func__

        def spy_create(cls, packed):
            shared = original_create(cls, packed)
            created.append(shared)
            return shared

        monkeypatch.setattr(
            SharedTraceBuffers, "create", classmethod(spy_create)
        )
        serial = run_comparison(sweep_trace, ["lru", "lfu"], [sweep_capacity])
        assert not created  # serial runs never touch shared memory
        pooled = run_comparison(
            sweep_trace, ["lru", "lfu"], [sweep_capacity], parallel=2
        )
        assert len(created) == 1
        assert created[0].released
        assert [result_key(r) for r in pooled] == [result_key(r) for r in serial]
        assert live_segment_names() == ()

    def test_pickle_fallback_when_shared_memory_unavailable(
        self, sweep_trace, sweep_capacity, monkeypatch
    ):
        """Platforms without usable /dev/shm still sweep correctly."""

        def refuse(cls, packed):
            raise OSError("no shared memory on this platform")

        monkeypatch.setattr(SharedTraceBuffers, "create", classmethod(refuse))
        serial = run_comparison(sweep_trace, ["lru", "lfu"], [sweep_capacity])
        pooled = run_comparison(
            sweep_trace, ["lru", "lfu"], [sweep_capacity], parallel=2
        )
        assert [result_key(r) for r in pooled] == [result_key(r) for r in serial]

    def test_no_leak_after_normal_completion(self, sweep_trace, sweep_capacity):
        run_comparison(sweep_trace, ["lru", "lfu"], [sweep_capacity], parallel=2)
        assert live_segment_names() == ()

    def test_no_leak_after_worker_failure(
        self, sweep_trace, sweep_capacity, exploding_policy
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork to inherit the test-local policy")
        fork = multiprocessing.get_context("fork")
        with pytest.raises(SweepCellError):
            run_comparison(
                sweep_trace,
                [exploding_policy, "lru"],
                [sweep_capacity],
                parallel=2,
                mp_context=fork,
            )
        assert live_segment_names() == ()

    def test_no_leak_after_keyboard_interrupt(
        self, sweep_trace, sweep_capacity, monkeypatch
    ):
        import repro.sim.parallel as parallel_module

        def interrupt(futures):
            raise KeyboardInterrupt

        monkeypatch.setattr(parallel_module, "as_completed", interrupt)
        with pytest.raises(KeyboardInterrupt):
            run_comparison(
                sweep_trace, ["lru", "lfu"], [sweep_capacity], parallel=2
            )
        assert live_segment_names() == ()

    def test_prepacked_trace_sweeps_identically(self, sweep_trace, sweep_capacity):
        """Callers may hand the sweep a PackedTrace directly."""
        packed = PackedTrace.from_trace(sweep_trace)
        serial = run_comparison(sweep_trace, ["lru", "lhd"], [sweep_capacity])
        pooled = run_comparison(packed, ["lru", "lhd"], [sweep_capacity], parallel=2)
        assert [result_key(r) for r in pooled] == [result_key(r) for r in serial]
        assert live_segment_names() == ()


class TestSweepSpans:
    """Span timelines over the sweep: one cell span per cell, worker
    pids preserved, and zero effect on results."""

    def _obs(self):
        from repro.obs import Observation, SpanRecorder

        return Observation.spans_only(SpanRecorder())

    def test_inline_sweep_records_cell_spans(self, sweep_trace, sweep_capacity):
        obs = self._obs()
        run_comparison(
            sweep_trace, ["lru", "lhd"], [sweep_capacity], obs=obs
        )
        spans = obs.spans.spans
        by_name = {span.name: span for span in spans}
        cells = [span for span in spans if span.cat == "cell"]
        assert len(cells) == 2
        assert {span.name for span in cells} == {
            f"lru@{sweep_capacity}", f"lhd@{sweep_capacity}"
        }
        sweep_span = by_name["sweep.run"]
        assert all(span.parent_id == sweep_span.span_id for span in cells)
        # Inline cells run in the driver process.
        assert {span.pid for span in cells} == {obs.spans.pid}
        # Each cell nests its replay.
        replays = [span for span in spans if span.name == "sim.replay"]
        assert len(replays) == 2

    @requires_fork
    def test_pooled_sweep_merges_worker_timelines(
        self, sweep_trace, sweep_capacity
    ):
        obs = self._obs()
        run_comparison(
            sweep_trace,
            ["lru", "lhd", "lfu", "gdsf"],
            [sweep_capacity],
            parallel=2,
            obs=obs,
        )
        spans = obs.spans.spans
        names = {span.name for span in spans}
        assert {"sweep.run", "sweep.scatter", "sweep.gather"} <= names
        cells = [span for span in spans if span.cat == "cell"]
        assert len(cells) == 4  # exactly the sweep's cell count
        worker_pids = {span.pid for span in cells}
        assert len(worker_pids) == 2  # one lane per worker
        assert obs.spans.pid not in worker_pids  # real forked pids
        # Worker cells hang off the driver's gather span, cross-process.
        gather = next(span for span in spans if span.name == "sweep.gather")
        for span in cells:
            assert span.parent_id == gather.span_id
            assert span.parent_pid == obs.spans.pid
        # Cell spans carry the hit ratio for straggler forensics.
        assert all("hit_ratio" in span.args for span in cells)

    @requires_fork
    def test_spans_do_not_change_results(self, sweep_trace, sweep_capacity):
        plain = run_comparison(
            sweep_trace, ["lru", "lhd"], [sweep_capacity], parallel=2
        )
        traced = run_comparison(
            sweep_trace,
            ["lru", "lhd"],
            [sweep_capacity],
            parallel=2,
            obs=self._obs(),
        )
        assert [result_key(r) for r in traced] == [result_key(r) for r in plain]

    @requires_fork
    def test_failed_cell_span_is_closed_and_flagged(
        self, sweep_trace, sweep_capacity, exploding_policy
    ):
        obs = self._obs()
        specs = [
            CellSpec(exploding_policy, sweep_capacity, index=0),
            CellSpec("lru", sweep_capacity, index=1),
        ]
        with pytest.raises(SweepCellError):
            run_sweep(
                PackedTrace.from_trace(sweep_trace), specs, jobs=2, obs=obs
            )
        cells = [span for span in obs.spans.spans if span.cat == "cell"]
        assert len(cells) == 2  # the failed cell still closed its span
        failed = next(s for s in cells if s.name.startswith(exploding_policy))
        assert failed.args.get("failed") is True
