"""Simulation engine: aggregation, warmup, windows, resource probes."""

import pytest

from repro.policies.classic import LruCache
from repro.sim.engine import simulate


class TestAggregates:
    def test_matches_policy_counters(self, tiny_trace):
        policy = LruCache(1000)
        result = simulate(policy, tiny_trace)
        assert result.requests == len(tiny_trace)
        assert result.hits == policy.hits
        assert result.object_hit_ratio == policy.object_hit_ratio
        assert result.evictions == policy.evictions
        assert result.admissions == policy.admissions

    def test_tiny_trace_exact_hits(self, tiny_trace):
        # With ample capacity: hits at the three re-requests.
        result = simulate(LruCache(1 << 20), tiny_trace)
        assert result.hits == 3
        assert result.total_bytes == 800
        assert result.hit_bytes == 300

    def test_wan_traffic_is_miss_bytes(self, tiny_trace):
        result = simulate(LruCache(1 << 20), tiny_trace)
        assert result.wan_traffic_bytes == 500
        assert result.wan_traffic_ratio == pytest.approx(500 / 800)

    def test_metadata_and_runtime_recorded(self, var_size_trace):
        result = simulate(LruCache(1 << 21), var_size_trace)
        assert result.runtime_seconds > 0
        assert result.peak_metadata_bytes > 0

    def test_result_row_shape(self, tiny_trace):
        row = simulate(LruCache(1000), tiny_trace).as_row()
        assert row["policy"] == "lru"
        assert row["trace"] == "tiny"
        assert 0 <= row["object_hit_ratio"] <= 1


class TestWarmup:
    def test_warmup_excluded_from_aggregates(self, tiny_trace):
        result = simulate(LruCache(1 << 20), tiny_trace, warmup_requests=4)
        assert result.requests == len(tiny_trace) - 4
        # Hits after index 4: request 4 (obj 2, warm) is excluded... the
        # remaining measured hits are at indices 4? no - indices 4..7:
        # (2: hit), (4: miss), (1: hit), (5: miss) minus index 4 excluded
        # -> measured window is indices 4..7 inclusive.
        assert result.hits == 2

    def test_rejects_negative_warmup(self, tiny_trace):
        with pytest.raises(ValueError):
            simulate(LruCache(10), tiny_trace, warmup_requests=-1)

    def test_rejects_warmup_at_or_beyond_trace(self, tiny_trace):
        # A warmup covering the whole trace would yield empty aggregates
        # (0/0 ratios) that silently poison downstream comparisons.
        with pytest.raises(ValueError, match="warmup_requests"):
            simulate(LruCache(1 << 20), tiny_trace, warmup_requests=100)
        with pytest.raises(ValueError, match="warmup_requests"):
            simulate(LruCache(1 << 20), tiny_trace, warmup_requests=len(tiny_trace))

    def test_warmup_up_to_last_request_allowed(self, tiny_trace):
        result = simulate(
            LruCache(1 << 20), tiny_trace, warmup_requests=len(tiny_trace) - 1
        )
        assert result.requests == 1


class TestWindows:
    def test_window_series_partition(self, var_size_trace):
        result = simulate(LruCache(1 << 21), var_size_trace, window_requests=500)
        assert sum(w.requests for w in result.windows) == len(var_size_trace)
        assert len(result.windows) == 6  # 3000 requests / 500

    def test_window_hits_sum_to_total(self, var_size_trace):
        result = simulate(LruCache(1 << 21), var_size_trace, window_requests=250)
        assert sum(w.hits for w in result.windows) == result.hits

    def test_no_windows_by_default(self, tiny_trace):
        assert simulate(LruCache(10), tiny_trace).windows == []

    def test_rejects_negative_window(self, tiny_trace):
        with pytest.raises(ValueError, match="window_requests"):
            simulate(LruCache(10), tiny_trace, window_requests=-1)

    def test_window_ratio_bounds(self, var_size_trace):
        result = simulate(LruCache(1 << 21), var_size_trace, window_requests=300)
        for window in result.windows:
            assert 0.0 <= window.hit_ratio <= 1.0
            assert 0.0 <= window.byte_hit_ratio <= 1.0
