"""Sweep runner: registry resolution, comparisons, table formatting."""

import pytest

from repro.core.lhr import DLhrCache, LhrCache
from repro.policies.classic import LruCache
from repro.sim.runner import (
    best_policy,
    build_policy,
    format_table,
    known_policies,
    run_comparison,
)


class TestBuildPolicy:
    def test_resolves_sota(self):
        assert isinstance(build_policy("lru", 100), LruCache)

    def test_resolves_core(self):
        assert isinstance(build_policy("lhr", 100), LhrCache)
        assert isinstance(build_policy("d-lhr", 100), DLhrCache)

    def test_case_insensitive(self):
        assert isinstance(build_policy("LHR", 100), LhrCache)

    def test_kwargs_forwarded(self):
        policy = build_policy("lhr", 100, num_irts=10)
        assert policy.num_irts == 10

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            build_policy("not-a-policy", 100)

    def test_known_policies_superset(self):
        names = known_policies()
        assert {"lhr", "d-lhr", "n-lhr", "lru", "lrb"} <= set(names)


class TestRunComparison:
    def test_grid_shape(self, var_size_trace):
        results = run_comparison(
            var_size_trace, ["lru", "lfu-da"], [1 << 20, 1 << 21]
        )
        assert len(results) == 4
        assert {r.policy for r in results} == {"lru", "lfu-da"}
        assert {r.capacity for r in results} == {1 << 20, 1 << 21}

    def test_policy_kwargs_forwarded(self, var_size_trace):
        results = run_comparison(
            var_size_trace,
            ["lru-4"],
            [1 << 20],
            policy_kwargs={"lru-4": {"k": 4}},
        )
        assert results[0].policy == "lru-4"

    def test_fresh_instance_per_cell(self, var_size_trace):
        results = run_comparison(var_size_trace, ["lru"], [1 << 20, 1 << 20])
        assert results[0].hits == results[1].hits  # independent, identical runs


class TestSelectors:
    def test_best_policy(self, var_size_trace):
        results = run_comparison(
            var_size_trace, ["lru", "gdsf", "no-cache"], [1 << 20]
        )
        best = best_policy(results)
        assert best.object_hit_ratio == max(r.object_hit_ratio for r in results)

    def test_best_policy_empty_raises(self):
        with pytest.raises(ValueError):
            best_policy([])

    def test_format_table(self, var_size_trace):
        results = run_comparison(var_size_trace, ["lru"], [1 << 20])
        table = format_table(results)
        assert "object_hit_ratio" in table
        assert "lru" in table
        assert format_table([]) == "(no results)"
