"""Che's approximation: fixed point, limits, agreement with simulation."""

import numpy as np
import pytest

from repro.policies.classic import LruCache
from repro.sim.analytical import che_hit_ratio_curve, fit_che_model
from repro.traces.synthetic import irm_trace
from repro.util.sampling import zipf_weights


class TestValidation:
    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            fit_che_model(np.ones(3), np.ones(4), 10)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            fit_che_model(np.array([-1.0]), np.array([1.0]), 10)
        with pytest.raises(ValueError):
            fit_che_model(np.array([1.0]), np.array([0.0]), 10)
        with pytest.raises(ValueError):
            fit_che_model(np.array([1.0]), np.array([1.0]), 0)

    def test_dict_inputs(self):
        model = fit_che_model({1: 2.0, 2: 1.0}, {1: 10, 2: 10}, 10)
        assert model.characteristic_time > 0

    def test_dict_key_mismatch(self):
        with pytest.raises(ValueError):
            fit_che_model({1: 2.0}, {2: 10}, 10)


class TestFixedPoint:
    def test_occupancy_equals_capacity(self):
        rates = zipf_weights(100, 0.9) * 50
        sizes = np.full(100, 10.0)
        model = fit_che_model(rates, sizes, 300)
        assert model.expected_occupancy == pytest.approx(300, rel=1e-3)

    def test_everything_fits_limit(self):
        model = fit_che_model(np.array([1.0, 2.0]), np.array([5.0, 5.0]), 100)
        assert model.characteristic_time == float("inf")
        assert model.object_hit_ratio == pytest.approx(1.0)

    def test_popular_content_higher_hit_probability(self):
        rates = np.array([10.0, 0.1])
        sizes = np.array([10.0, 10.0])
        model = fit_che_model(rates, sizes, 10)
        assert model.hit_probability(0) > model.hit_probability(1)

    def test_hit_ratio_monotone_in_capacity(self):
        rates = zipf_weights(200, 1.0) * 100
        sizes = np.full(200, 8.0)
        curve = che_hit_ratio_curve(rates, sizes, [100, 400, 1200])
        ratios = [ratio for _, ratio in curve]
        assert ratios == sorted(ratios)


class TestAgainstSimulation:
    def test_matches_lru_simulation_on_irm(self):
        num_contents = 250
        alpha = 0.9
        trace = irm_trace(
            30_000, num_contents, alpha=alpha, equal_size=1 << 10, seed=9
        )
        capacity = 40 << 10
        weights = zipf_weights(num_contents, alpha)
        total_rate = len(trace) / trace.duration
        model = fit_che_model(
            weights * total_rate, np.full(num_contents, 1 << 10), capacity
        )
        lru = LruCache(capacity)
        lru.process(trace)
        # Che's approximation is famously accurate for IRM + LRU.
        assert model.object_hit_ratio == pytest.approx(
            lru.object_hit_ratio, abs=0.03
        )

    def test_byte_hit_with_variable_sizes(self):
        rates = np.array([10.0, 0.1])
        sizes = np.array([10.0, 2000.0])
        model = fit_che_model(rates, sizes, 500)
        # The hot small content has a near-1 hit probability, the cold
        # big one near-0; byte weighting (rate*size) emphasizes the big
        # one 2x, so the byte hit ratio must be lower.
        assert model.byte_hit_ratio < model.object_hit_ratio - 0.05
