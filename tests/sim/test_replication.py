"""Seed-sweep replication harness."""

import pytest

from repro.sim.replication import ReplicatedResult, replicate_comparison


class TestReplicatedResult:
    def test_statistics(self):
        result = ReplicatedResult(
            policy="lru",
            trace="cdn-a",
            capacity=100,
            seeds=(1, 2, 3),
            object_hit_ratios=(0.2, 0.3, 0.4),
            byte_hit_ratios=(0.1, 0.1, 0.1),
        )
        assert result.mean_object_hit == pytest.approx(0.3)
        assert result.std_object_hit == pytest.approx(0.1)
        assert result.std_byte_hit == pytest.approx(0.0)

    def test_single_seed_zero_std(self):
        result = ReplicatedResult(
            policy="lru",
            trace="cdn-a",
            capacity=100,
            seeds=(1,),
            object_hit_ratios=(0.5,),
            byte_hit_ratios=(0.4,),
        )
        assert result.std_object_hit == 0.0

    def test_row_format(self):
        result = ReplicatedResult(
            policy="lru",
            trace="cdn-a",
            capacity=100,
            seeds=(1, 2),
            object_hit_ratios=(0.25, 0.35),
            byte_hit_ratios=(0.2, 0.2),
        )
        row = result.as_row()
        assert row["object_hit"] == "0.300±0.071"
        assert row["seeds"] == 2


class TestReplicateComparison:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            replicate_comparison("nope", ["lru"], 64, [1])
        with pytest.raises(ValueError):
            replicate_comparison("cdn-c", ["lru"], 64, [])

    def test_sequential_sweep(self):
        results = replicate_comparison(
            "cdn-c", ["lru", "gdsf"], 128, seeds=[1, 2], scale=0.004
        )
        assert len(results) == 2
        for result in results:
            assert len(result.object_hit_ratios) == 2
            assert result.seeds == (1, 2)
            assert 0.0 <= result.mean_object_hit <= 1.0

    def test_deterministic_per_seed(self):
        a = replicate_comparison("cdn-c", ["lru"], 128, seeds=[3], scale=0.004)
        b = replicate_comparison("cdn-c", ["lru"], 128, seeds=[3], scale=0.004)
        assert a[0].object_hit_ratios == b[0].object_hit_ratios

    def test_parallel_matches_sequential(self):
        sequential = replicate_comparison(
            "cdn-c", ["lru"], 128, seeds=[1, 2], scale=0.004, workers=0
        )
        parallel = replicate_comparison(
            "cdn-c", ["lru"], 128, seeds=[1, 2], scale=0.004, workers=2
        )
        assert sequential[0].object_hit_ratios == parallel[0].object_hit_ratios

    def test_policy_kwargs_forwarded(self):
        results = replicate_comparison(
            "cdn-c",
            ["lru-4"],
            128,
            seeds=[1],
            scale=0.004,
            policy_kwargs={"lru-4": {"k": 2}},
        )
        assert results[0].policy == "lru-4"
