"""Hash-sharded single-trace replay: partition determinism, global-window
accounting, serial/parallel bit-equivalence, and leak-safe failure.

The sharded contract (see ``repro.sim.parallel``): the id-space partition
is a pure function of the object id, sharded-parallel equals
sharded-serial bit for bit for every registered policy, and one shard is
exactly the unsharded packed replay.  Sharding with N > 1 is a
*different* cache (per-shard eviction is decoupled), so nothing here
compares N > 1 against the unsharded cache's hit ratios.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.policies import POLICY_REGISTRY
from repro.sim import (
    SweepCellError,
    known_policies,
    run_sharded,
    shard_assignments,
    shard_capacities,
    shard_of,
    simulate,
)
from repro.sim.parallel import ShardSpec, _replay_shard, _run_shard
from repro.sim.runner import build_policy
from repro.traces.packed import PackedTrace, live_segment_names
from repro.traces.synthetic import irm_trace
from repro.util.bloom import _mix64

from tests.sim.test_parallel import _ExplodingCache  # noqa: F401 — reused class

#: Trimmed learner settings so the heavyweight policies train at this
#: trace size without dominating suite wall time.
SHARD_KWARGS = {
    "lrb": {"training_batch": 256, "max_training_data": 1024},
    "lfo": {"window_requests": 200},
}

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs the fork start method to inherit test-local policies",
)


@pytest.fixture(scope="module")
def shard_trace():
    return irm_trace(
        900, 80, alpha=0.9, mean_size=1 << 10, size_sigma=1.0, seed=11,
        name="sharded",
    )


@pytest.fixture(scope="module")
def shard_packed(shard_trace):
    return PackedTrace.from_trace(shard_trace)


@pytest.fixture(scope="module")
def shard_capacity(shard_trace):
    return max(int(0.2 * shard_trace.unique_bytes()), 16)


def result_key(result):
    """Everything sharded equivalence must preserve."""
    return (
        result.policy,
        result.capacity,
        result.counters(),
        result.object_hit_ratio,
        result.byte_hit_ratio,
        result.window_series(),
        [w.evictions for w in result.windows],
        result.peak_metadata_bytes,
    )


class TestShardAssignment:
    def test_vectorized_matches_scalar_mixer(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 2**63 - 1, size=2000, dtype=np.int64)
        for shards in (1, 2, 3, 7, 16):
            vec = shard_assignments(ids, shards)
            ref = [shard_of(int(obj_id), shards) for obj_id in ids.tolist()]
            assert vec.tolist() == ref, f"shards={shards}"

    def test_assignment_is_pure_function_of_id(self):
        # Never Python hash(): the partition must survive interpreter
        # restarts and PYTHONHASHSEED, so it goes through the SplitMix64
        # mixer — pin a few values against the reference mixer directly.
        for obj_id in (0, 1, 42, 2**40, 2**63 - 1):
            assert shard_of(obj_id, 8) == _mix64(obj_id) % 8

    def test_one_shard_takes_everything(self):
        ids = np.arange(100, dtype=np.int64)
        assert shard_assignments(ids, 1).tolist() == [0] * 100

    def test_partition_is_complete_and_disjoint(self, shard_packed):
        assignment = shard_assignments(shard_packed.obj_ids, 4)
        counts = np.bincount(assignment, minlength=4)
        assert int(counts.sum()) == len(shard_packed)
        # Mixing an IRM id space should touch every shard.
        assert (counts > 0).all()


class TestShardCapacities:
    def test_slices_sum_to_capacity(self):
        for capacity, shards in ((100, 3), (17, 4), (1 << 30, 7), (5, 5)):
            caps = shard_capacities(capacity, shards)
            assert sum(caps) == capacity
            assert len(caps) == shards
            assert max(caps) - min(caps) <= 1
            assert caps == sorted(caps, reverse=True)

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError, match="shards"):
            shard_capacities(100, 0)

    def test_rejects_capacity_smaller_than_shards(self):
        with pytest.raises(ValueError, match="cannot be split"):
            shard_capacities(3, 4)


class TestOneShardIsUnsharded:
    """``shards=1`` must reproduce the unsharded packed replay exactly —
    counters, window series, window evictions and metadata peaks."""

    @pytest.mark.parametrize("name", known_policies())
    def test_every_policy(self, name, shard_trace, shard_packed, shard_capacity):
        kwargs = SHARD_KWARGS.get(name, {})
        base = simulate(
            build_policy(name, shard_capacity, **kwargs), shard_packed,
            window_requests=250, warmup_requests=100,
        )
        one = run_sharded(
            shard_packed, name, shard_capacity, shards=1, kwargs=kwargs,
            window_requests=250, warmup_requests=100,
        )
        assert result_key(base)[:6] == result_key(one)[:6]
        assert [w.evictions for w in base.windows] == [
            w.evictions for w in one.windows
        ]
        assert base.peak_metadata_bytes == one.peak_metadata_bytes


class TestSerialParallelEquivalence:
    """The headline sharded guarantee: pooled execution is bit-identical
    to serial execution for every registered policy."""

    @pytest.mark.parametrize("name", known_policies())
    def test_every_policy(self, name, shard_packed, shard_capacity):
        kwargs = SHARD_KWARGS.get(name, {})
        serial = run_sharded(
            shard_packed, name, shard_capacity, shards=3, kwargs=kwargs,
            window_requests=250, warmup_requests=100, jobs=0,
        )
        pooled = run_sharded(
            shard_packed, name, shard_capacity, shards=3, kwargs=kwargs,
            window_requests=250, warmup_requests=100, jobs=2,
        )
        assert result_key(serial) == result_key(pooled)
        assert live_segment_names() == ()

    def test_repeated_runs_identical(self, shard_packed, shard_capacity):
        runs = [
            run_sharded(
                shard_packed, "lhr", shard_capacity, shards=3,
                kwargs={"seed": 0}, window_requests=250,
            )
            for _ in range(2)
        ]
        assert result_key(runs[0]) == result_key(runs[1])


class TestGlobalWindowAccounting:
    def test_windows_align_with_the_global_grid(self, shard_packed, shard_capacity):
        window = 250
        merged = run_sharded(
            shard_packed, "lru", shard_capacity, shards=4, window_requests=window
        )
        total = len(shard_packed)
        expected = [
            min(window, total - k * window)
            for k in range(-(-total // window))
        ]
        assert [w.requests for w in merged.windows] == expected
        assert sum(w.hits for w in merged.windows) == merged.hits

    def test_merged_aggregates_cover_every_request(
        self, shard_packed, shard_capacity
    ):
        warmup = 150
        merged = run_sharded(
            shard_packed, "lru", shard_capacity, shards=3,
            warmup_requests=warmup,
        )
        assert merged.requests == len(shard_packed) - warmup
        assert merged.extra["shards"] == 3
        assert merged.total_bytes == int(shard_packed.sizes[warmup:].sum())

    def test_shard_results_partition_the_measured_stream(
        self, shard_packed, shard_capacity
    ):
        # Per-shard results (driven directly through the worker entry)
        # must sum to the merged aggregates.
        caps = shard_capacities(shard_capacity, 3)
        assignment = shard_assignments(shard_packed.obj_ids, 3)
        per_shard = []
        for shard in range(3):
            policy = build_policy("lru", caps[shard])
            global_idx = np.nonzero(assignment == shard)[0]
            per_shard.append(
                _replay_shard(policy, shard_packed, global_idx, 250, 100)
            )
        merged = run_sharded(
            shard_packed, "lru", shard_capacity, shards=3,
            window_requests=250, warmup_requests=100,
        )
        assert sum(r.requests for r in per_shard) == merged.requests
        assert sum(r.hits for r in per_shard) == merged.hits
        assert sum(r.evictions for r in per_shard) == merged.evictions


@pytest.fixture()
def exploding_policy():
    POLICY_REGISTRY["exploding"] = _ExplodingCache
    try:
        yield "exploding"
    finally:
        POLICY_REGISTRY.pop("exploding", None)


class TestValidationAndFailure:
    def test_rejects_bad_shard_count(self, shard_packed, shard_capacity):
        with pytest.raises(ValueError, match="shards"):
            run_sharded(shard_packed, "lru", shard_capacity, shards=0)

    def test_rejects_warmup_beyond_trace(self, shard_packed, shard_capacity):
        with pytest.raises(ValueError, match="warmup"):
            run_sharded(
                shard_packed, "lru", shard_capacity, shards=2,
                warmup_requests=len(shard_packed),
            )

    def test_unknown_policy_fails_fast_in_driver(
        self, shard_packed, shard_capacity
    ):
        with pytest.raises(ValueError, match="unknown policy"):
            run_sharded(shard_packed, "nope", shard_capacity, shards=2)

    def test_serial_failure_names_every_shard(
        self, shard_packed, shard_capacity, exploding_policy
    ):
        with pytest.raises(SweepCellError) as excinfo:
            run_sharded(shard_packed, exploding_policy, shard_capacity, shards=3)
        failures = excinfo.value.failures
        # Every shard sees > fail_after requests, so all three detonate —
        # and all three are reported (run-to-completion, like sweeps).
        assert len(failures) == 3
        assert all("synthetic mid-simulation failure" in f.error for f in failures)
        assert sorted(f.index for f in failures) == [0, 1, 2]

    @requires_fork
    def test_pooled_failure_releases_the_segment(
        self, shard_packed, shard_capacity, exploding_policy
    ):
        fork = multiprocessing.get_context("fork")
        with pytest.raises(SweepCellError):
            run_sharded(
                shard_packed, exploding_policy, shard_capacity, shards=3,
                jobs=2, mp_context=fork,
            )
        assert live_segment_names() == ()

    def test_interrupt_releases_the_segment(
        self, shard_packed, shard_capacity, monkeypatch
    ):
        import repro.sim.parallel as parallel_module

        def interrupt(futures):
            raise KeyboardInterrupt

        monkeypatch.setattr(parallel_module, "as_completed", interrupt)
        with pytest.raises(KeyboardInterrupt):
            run_sharded(
                shard_packed, "lru", shard_capacity, shards=2, jobs=2
            )
        assert live_segment_names() == ()

    def test_worker_entry_never_raises(self, shard_packed, shard_capacity):
        import repro.sim.parallel as parallel_module

        previous = parallel_module._WORKER_TRACE
        parallel_module._WORKER_TRACE = shard_packed
        try:
            spec = ShardSpec(
                policy="lru", capacity=shard_capacity, shard=0, shards=2,
                kwargs=(("bogus_kwarg", 1),),
            )
            shard, result, failure = _run_shard(spec, 0, 0)
        finally:
            parallel_module._WORKER_TRACE = previous
        assert shard == 0
        assert result is None
        assert failure is not None
        assert "bogus_kwarg" in failure.traceback
