"""Two-level cache hierarchy."""

import pytest

from repro.policies import make_policy
from repro.sim import TieredCache, simulate
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def req(obj_id, time, size=10):
    return Request(time=time, obj_id=obj_id, size=size)


@pytest.fixture()
def tiered():
    return TieredCache(make_policy("lru", 30), make_policy("lru", 300))


class TestRequestPath:
    def test_miss_populates_both_levels(self, tiered):
        assert tiered.request(req(1, 0.0)) is False
        assert tiered.l1.contains(1)
        assert tiered.l2.contains(1)

    def test_l1_hit_counted(self, tiered):
        tiered.request(req(1, 0.0))
        assert tiered.request(req(1, 1.0)) is True
        assert tiered.l1_hits == 1
        assert tiered.l2_hits == 0

    def test_l2_hit_promotes(self, tiered):
        tiered.request(req(1, 0.0))
        # Push content 1 out of the small L1 (capacity 30 = 3 objects).
        for i in range(2, 6):
            tiered.request(req(i, float(i)))
        assert not tiered.l1.contains(1)
        assert tiered.l2.contains(1)
        assert tiered.request(req(1, 10.0)) is True
        assert tiered.l2_hits == 1
        assert tiered.l1.contains(1)  # promoted

    def test_name_and_capacity(self, tiered):
        assert tiered.name == "tiered(lru/lru)"
        assert tiered.capacity == 330

    def test_contains_union(self, tiered):
        tiered.request(req(1, 0.0))
        assert tiered.contains(1)
        assert not tiered.contains(2)


class TestAccounting:
    def test_counters_aggregate_levels(self, tiered):
        for i in range(20):
            tiered.request(req(i % 7, float(i)))
        assert tiered.hits + tiered.misses == 20
        assert tiered.used_bytes == tiered.l1.used_bytes + tiered.l2.used_bytes
        assert tiered.evictions == tiered.l1.evictions + tiered.l2.evictions
        report = tiered.level_report()
        assert report["overall_hit_ratio"] == pytest.approx(
            report["l1_hit_ratio"] + report["l2_hit_ratio"]
        )

    def test_metadata_aggregates(self, tiered):
        tiered.request(req(1, 0.0))
        assert tiered.metadata_bytes() >= 0


class TestWithSimulator:
    def test_simulate_accepts_tiered(self):
        trace = irm_trace(2000, 80, mean_size=1 << 12, seed=13)
        tiered = TieredCache(
            make_policy("lru", 1 << 18), make_policy("gdsf", 1 << 21)
        )
        result = simulate(tiered, trace)
        assert result.requests == len(trace)
        assert result.hits == tiered.hits

    def test_hierarchy_at_least_as_good_as_l2_alone(self):
        trace = irm_trace(4000, 120, mean_size=1 << 12, seed=14)
        l2_capacity = 1 << 21
        alone = make_policy("lru", l2_capacity)
        alone.process(trace)
        tiered = TieredCache(make_policy("lru", 1 << 18), make_policy("lru", l2_capacity))
        tiered.process(trace)
        # The inclusive L1 only ever serves requests L2 would also serve,
        # so the overall hit ratio is at least L2-alone's (same L2 state).
        assert tiered.object_hit_ratio >= alone.object_hit_ratio - 0.01


class TestObservationThreading:
    def test_attach_observation_reaches_both_levels(self):
        from repro.obs import MemoryRecorder, Observation

        tiered = TieredCache(
            make_policy("lru", 1 << 20), make_policy("lru", 8 << 20)
        )
        obs = Observation(recorder=MemoryRecorder())
        tiered.attach_observation(obs)
        assert tiered.obs is obs
        assert tiered.l1.obs is obs
        assert tiered.l2.obs is obs

    def test_simulate_threads_obs_into_lhr_level(self):
        """An LHR behind the tiered wrapper still emits its lifecycle
        events when the engine attaches the observation to the wrapper."""
        from repro.core.lhr import LhrCache
        from repro.obs import MemoryRecorder, Observation

        trace = irm_trace(
            2500, 120, alpha=0.8, mean_size=1 << 16, size_sigma=1.0,
            seed=21, name="tiered-obs",
        )
        capacity = max(int(0.2 * trace.unique_bytes()), 1)
        tiered = TieredCache(
            make_policy("lru", capacity // 4), LhrCache(capacity, seed=0)
        )
        obs = Observation(recorder=MemoryRecorder())
        simulate(tiered, trace, obs=obs)
        types = {e["event"] for e in obs.recorder.events}
        assert "lhr.retrain" in types  # flowed through the hierarchy
        assert obs.registry.histogram("lhr_train_seconds").count > 0
