"""IndexedSet: O(1) set with uniform sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.indexed_set import IndexedSet


class TestBasics:
    def test_add_contains_len(self):
        s = IndexedSet()
        s.add(1)
        s.add(2)
        s.add(1)  # duplicate is a no-op
        assert len(s) == 2
        assert 1 in s and 2 in s and 3 not in s

    def test_remove(self):
        s = IndexedSet()
        for key in (1, 2, 3):
            s.add(key)
        s.remove(2)
        assert 2 not in s
        assert len(s) == 2

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedSet().remove(9)

    def test_discard_missing_is_noop(self):
        s = IndexedSet()
        s.discard(9)
        assert len(s) == 0

    def test_remove_last_element(self):
        s = IndexedSet()
        s.add(7)
        s.remove(7)
        assert len(s) == 0

    def test_iteration(self):
        s = IndexedSet()
        for key in (5, 6, 7):
            s.add(key)
        assert set(s) == {5, 6, 7}

    def test_clear(self):
        s = IndexedSet()
        s.add(1)
        s.clear()
        assert len(s) == 0 and 1 not in s


class TestSampling:
    def test_sample_all_when_count_exceeds_size(self):
        s = IndexedSet()
        for key in range(5):
            s.add(key)
        sample = s.sample(100, np.random.default_rng(0))
        assert sorted(sample) == list(range(5))

    def test_sample_distinct(self):
        s = IndexedSet()
        for key in range(100):
            s.add(key)
        sample = s.sample(30, np.random.default_rng(1))
        assert len(sample) == 30
        assert len(set(sample)) == 30
        assert all(key in s for key in sample)

    def test_sample_roughly_uniform(self):
        s = IndexedSet()
        for key in range(10):
            s.add(key)
        rng = np.random.default_rng(2)
        counts = np.zeros(10)
        for _ in range(2000):
            for key in s.sample(3, rng):
                counts[key] += 1
        assert counts.min() > 0.5 * counts.max()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=40)), max_size=150
    )
)
def test_property_matches_builtin_set(operations):
    indexed = IndexedSet()
    reference: set[int] = set()
    for is_add, key in operations:
        if is_add:
            indexed.add(key)
            reference.add(key)
        else:
            indexed.discard(key)
            reference.discard(key)
        assert len(indexed) == len(reference)
    assert set(indexed) == reference
