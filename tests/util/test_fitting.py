"""Least-squares Zipf fitting (the LSM detector's estimator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.fitting import fit_zipf, fit_zipf_from_requests
from repro.util.sampling import ZipfSampler, zipf_weights


class TestFitZipf:
    def test_recovers_exact_zipf(self):
        for alpha in (0.5, 0.8, 1.0, 1.3):
            counts = zipf_weights(500, alpha) * 1e6
            fit = fit_zipf(counts)
            assert fit.alpha == pytest.approx(alpha, abs=1e-6)
            assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_recovers_alpha_from_samples(self):
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(200, 0.9, rng=rng)
        ids = sampler.sample(100_000)
        counts = np.bincount(ids, minlength=200)
        fit = fit_zipf(counts.astype(float))
        assert fit.alpha == pytest.approx(0.9, abs=0.15)

    def test_order_invariant(self):
        counts = np.array([50.0, 10.0, 100.0, 25.0, 5.0])
        shuffled = counts[::-1]
        assert fit_zipf(counts).alpha == pytest.approx(fit_zipf(shuffled).alpha)

    def test_drops_zero_entries(self):
        counts = np.array([100.0, 0.0, 50.0, 0.0, 33.0])
        fit = fit_zipf(counts)
        assert fit.num_contents == 3

    def test_uniform_counts_give_alpha_zero(self):
        fit = fit_zipf(np.full(100, 10.0))
        assert fit.alpha == pytest.approx(0.0, abs=1e-9)

    def test_rejects_fewer_than_two_contents(self):
        with pytest.raises(ValueError):
            fit_zipf(np.array([5.0]))
        with pytest.raises(ValueError):
            fit_zipf(np.array([0.0, 0.0]))

    def test_intercept_consistent_with_normalization(self):
        counts = zipf_weights(100, 0.7) * 1e5
        fit = fit_zipf(counts)
        # p_1 = exp(log_amplitude) should match the top probability.
        assert np.exp(fit.log_amplitude) == pytest.approx(
            counts[0] / counts.sum(), rel=1e-6
        )


class TestFitFromRequests:
    def test_counts_request_stream(self):
        stream = [1, 1, 1, 2, 2, 3]
        fit = fit_zipf_from_requests(stream)
        assert fit.num_contents == 3
        assert fit.alpha > 0

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError):
            fit_zipf_from_requests([])


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=1.8),
    st.integers(min_value=10, max_value=300),
)
def test_property_exact_recovery(alpha, n):
    counts = zipf_weights(n, alpha) * 1e9
    fit = fit_zipf(counts)
    assert fit.alpha == pytest.approx(alpha, abs=1e-4)
