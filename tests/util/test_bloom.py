"""Bloom filter: correctness, false-positive behaviour and sizing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bloom import BloomFilter


class TestConstruction:
    def test_rejects_non_positive_expected_items(self):
        with pytest.raises(ValueError):
            BloomFilter(0)

    @pytest.mark.parametrize("fpr", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_false_positive_rate(self, fpr):
        with pytest.raises(ValueError):
            BloomFilter(100, fpr)

    def test_sizing_grows_with_capacity(self):
        small = BloomFilter(100)
        large = BloomFilter(10_000)
        assert large.num_bits > small.num_bits

    def test_sizing_grows_with_precision(self):
        loose = BloomFilter(1000, 0.1)
        tight = BloomFilter(1000, 0.001)
        assert tight.num_bits > loose.num_bits
        assert tight.num_hashes >= loose.num_hashes


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter(1000)
        keys = list(range(0, 2000, 2))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(100)
        assert all(key not in bloom for key in range(50))

    def test_add_reports_prior_presence(self):
        bloom = BloomFilter(1000)
        assert bloom.add(7) is False
        assert bloom.add(7) is True

    def test_len_counts_distinct_inserts(self):
        bloom = BloomFilter(1000)
        for key in [1, 2, 3, 2, 1]:
            bloom.add(key)
        assert len(bloom) == 3

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(2000, false_positive_rate=0.01)
        for key in range(2000):
            bloom.add(key)
        probes = range(10_000, 30_000)
        false_positives = sum(1 for key in probes if key in bloom)
        # Allow generous slack over the 1% target.
        assert false_positives / 20_000 < 0.05

    def test_negative_and_huge_keys(self):
        bloom = BloomFilter(100)
        for key in (-1, -(10**18), 2**63, 2**64 + 17):
            bloom.add(key)
            assert key in bloom


class TestMaintenance:
    def test_clear_resets_state(self):
        bloom = BloomFilter(100)
        bloom.add(5)
        bloom.clear()
        assert 5 not in bloom
        assert len(bloom) == 0
        assert bloom.fill_ratio() == 0.0

    def test_fill_ratio_monotone(self):
        bloom = BloomFilter(500)
        previous = 0.0
        for key in range(0, 500, 50):
            bloom.add(key)
            ratio = bloom.fill_ratio()
            assert ratio >= previous
            previous = ratio
        assert 0.0 < bloom.fill_ratio() < 1.0

    def test_metadata_bytes_matches_bit_array(self):
        bloom = BloomFilter(1000)
        assert bloom.metadata_bytes() == pytest.approx(bloom.num_bits / 8, rel=0.2)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=200))
def test_property_no_false_negatives(keys):
    bloom = BloomFilter(max(len(keys), 1) * 4 + 8)
    for key in keys:
        bloom.add(key)
    assert all(key in bloom for key in keys)
