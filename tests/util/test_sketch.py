"""Count-min sketch: estimates, saturation, aging and error bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.sketch import CountMinSketch


class TestConstruction:
    @pytest.mark.parametrize("width,depth", [(0, 4), (16, 0), (-1, 2)])
    def test_rejects_bad_dimensions(self, width, depth):
        with pytest.raises(ValueError):
            CountMinSketch(width=width, depth=depth)

    def test_rejects_bad_max_count(self):
        with pytest.raises(ValueError):
            CountMinSketch(max_count=0)

    def test_width_rounded_to_power_of_two(self):
        sketch = CountMinSketch(width=1000)
        assert sketch.width == 1024


class TestEstimation:
    def test_unseen_key_estimates_zero(self):
        sketch = CountMinSketch(width=256)
        assert sketch.estimate(12345) == 0

    def test_estimate_never_underestimates(self):
        sketch = CountMinSketch(width=4096, depth=4, max_count=1000)
        truth: dict[int, int] = {}
        for key in range(200):
            count = (key % 7) + 1
            truth[key] = count
            for _ in range(count):
                sketch.add(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_estimate_exact_when_sparse(self):
        sketch = CountMinSketch(width=4096, depth=4, max_count=100)
        sketch.add(1, count=3)
        sketch.add(2, count=5)
        assert sketch.estimate(1) == 3
        assert sketch.estimate(2) == 5

    def test_rejects_non_positive_count(self):
        sketch = CountMinSketch()
        with pytest.raises(ValueError):
            sketch.add(1, count=0)

    def test_counter_saturation(self):
        sketch = CountMinSketch(width=256, max_count=15)
        for _ in range(100):
            sketch.add(9)
        assert sketch.estimate(9) == 15


class TestAging:
    def test_aging_halves_counters(self):
        sketch = CountMinSketch(width=256, sample_size=0, max_count=100)
        for _ in range(8):
            sketch.add(1)
        sketch._age()
        assert sketch.estimate(1) == 4

    def test_automatic_aging_bounds_estimates(self):
        sketch = CountMinSketch(width=256, sample_size=16, max_count=100)
        for _ in range(64):
            sketch.add(2)
        # With aging every 16 increments the counter cannot reach 64.
        assert sketch.estimate(2) < 40

    def test_clear(self):
        sketch = CountMinSketch(width=256)
        sketch.add(3, count=5)
        sketch.clear()
        assert sketch.estimate(3) == 0

    def test_metadata_bytes_positive(self):
        assert CountMinSketch(width=1024, depth=4).metadata_bytes() == 1024 * 4 * 4


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=10),
        max_size=50,
    )
)
def test_property_overestimate_only(truth):
    sketch = CountMinSketch(width=2048, depth=4, max_count=1 << 20)
    for key, count in truth.items():
        sketch.add(key, count=count)
    for key, count in truth.items():
        assert sketch.estimate(key) >= count
