"""Streaming statistics: Welford, reservoir percentiles, EWMA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import EwmaEstimator, PercentileTracker, RunningStats


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.minimum == 0.0 and stats.maximum == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == 5.0 and stats.maximum == 5.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(1000) * 3 + 7
        stats = RunningStats()
        for value in values:
            stats.add(float(value))
        assert stats.mean == pytest.approx(values.mean())
        assert stats.variance == pytest.approx(values.var(ddof=1))
        assert stats.stddev == pytest.approx(values.std(ddof=1))
        assert stats.minimum == pytest.approx(values.min())
        assert stats.maximum == pytest.approx(values.max())

    def test_merge_equals_sequential(self):
        """Chan et al. parallel merge must match feeding one stream."""
        rng = np.random.default_rng(1)
        values = rng.standard_normal(500) * 2 - 3
        combined = RunningStats()
        left, right = RunningStats(), RunningStats()
        for i, value in enumerate(values):
            combined.add(float(value))
            (left if i < 200 else right).add(float(value))
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_with_empty_is_identity(self):
        stats = RunningStats()
        stats.add(1.0)
        stats.add(3.0)
        stats.merge(RunningStats())
        assert stats.count == 2 and stats.mean == 2.0
        empty = RunningStats()
        empty.merge(stats)
        assert empty.count == 2 and empty.mean == 2.0


class TestPercentileTracker:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PercentileTracker(0)

    def test_rejects_bad_quantile(self):
        tracker = PercentileTracker()
        with pytest.raises(ValueError):
            tracker.percentile(101)

    def test_empty_returns_zero(self):
        assert PercentileTracker().percentile(50) == 0.0

    def test_merge_exact_under_capacity(self):
        left = PercentileTracker(capacity=1000)
        right = PercentileTracker(capacity=1000)
        for value in range(50):
            left.add(float(value))
        for value in range(50, 100):
            right.add(float(value))
        left.merge(right)
        assert left.percentile(50) == pytest.approx(49.5, abs=1.0)
        assert left.percentile(100) == 99.0

    def test_merge_approximates_when_sampled(self):
        rng = np.random.default_rng(3)
        left = PercentileTracker(capacity=256, seed=1)
        right = PercentileTracker(capacity=256, seed=2)
        for value in rng.uniform(0, 1, 5000):
            left.add(float(value))
        for value in rng.uniform(0, 1, 5000):
            right.add(float(value))
        left.merge(right)
        assert left.percentile(50) == pytest.approx(0.5, abs=0.1)

    def test_exact_when_under_capacity(self):
        tracker = PercentileTracker(capacity=1000)
        values = list(range(100))
        for value in values:
            tracker.add(value)
        assert tracker.percentile(50) == pytest.approx(np.percentile(values, 50))
        assert tracker.percentile(90) == pytest.approx(np.percentile(values, 90))

    def test_reservoir_approximates_long_stream(self):
        rng = np.random.default_rng(1)
        tracker = PercentileTracker(capacity=4096, seed=1)
        values = rng.exponential(1.0, 100_000)
        for value in values:
            tracker.add(float(value))
        assert tracker.count == 100_000
        assert tracker.percentile(90) == pytest.approx(
            np.percentile(values, 90), rel=0.1
        )

    def test_deterministic_for_seed(self):
        def run():
            tracker = PercentileTracker(capacity=16, seed=3)
            for value in range(1000):
                tracker.add(value)
            return tracker.percentile(50)

        assert run() == run()


class TestEwma:
    @pytest.mark.parametrize("alpha", [0.0, 1.5, -0.2])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha)

    def test_uninitialized_value(self):
        est = EwmaEstimator()
        assert est.value == 0.0
        assert not est.initialized

    def test_bias_corrected_first_value(self):
        est = EwmaEstimator(alpha=0.1)
        est.add(10.0)
        assert est.value == pytest.approx(10.0)

    def test_converges_to_constant(self):
        est = EwmaEstimator(alpha=0.25)
        for _ in range(100):
            est.add(4.0)
        assert est.value == pytest.approx(4.0)

    def test_tracks_level_shift(self):
        est = EwmaEstimator(alpha=0.5)
        for _ in range(20):
            est.add(0.0)
        for _ in range(20):
            est.add(100.0)
        assert est.value > 99.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2))
def test_property_welford_matches_numpy(values):
    stats = RunningStats()
    for value in values:
        stats.add(value)
    arr = np.asarray(values)
    assert stats.mean == pytest.approx(arr.mean(), rel=1e-6, abs=1e-6)
    assert stats.variance == pytest.approx(arr.var(ddof=1), rel=1e-5, abs=1e-4)
