"""Zipf sampling and heavy-tailed size generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.sampling import ZipfSampler, lognormal_sizes, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 0.9)
        assert weights.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.1)
        assert (np.diff(weights) < 0).all()

    def test_alpha_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_higher_alpha_more_skewed(self):
        flat = zipf_weights(100, 0.5)
        steep = zipf_weights(100, 1.5)
        assert steep[0] > flat[0]
        assert steep[-1] < flat[-1]

    @pytest.mark.parametrize("n,alpha", [(0, 1.0), (-5, 1.0), (10, -0.1)])
    def test_rejects_bad_arguments(self, n, alpha):
        with pytest.raises(ValueError):
            zipf_weights(n, alpha)


class TestZipfSampler:
    def test_sample_range(self):
        sampler = ZipfSampler(20, 0.8, rng=np.random.default_rng(0))
        ids = sampler.sample(1000)
        assert ids.min() >= 0
        assert ids.max() < 20

    def test_empirical_frequencies_follow_weights(self):
        rng = np.random.default_rng(1)
        sampler = ZipfSampler(10, 1.0, rng=rng)
        ids = sampler.sample(200_000)
        counts = np.bincount(ids, minlength=10) / ids.size
        assert np.allclose(counts, sampler.weights, atol=0.01)

    def test_reverse_flips_popularity(self):
        rng = np.random.default_rng(2)
        forward = ZipfSampler(100, 1.0, rng=rng)
        backward = ZipfSampler(100, 1.0, reverse=True, rng=rng)
        assert forward.probability(0) == pytest.approx(backward.probability(99))
        assert forward.probability(0) > forward.probability(99)
        assert backward.probability(99) > backward.probability(0)

    def test_deterministic_given_seed(self):
        a = ZipfSampler(50, 0.9, rng=np.random.default_rng(7)).sample(100)
        b = ZipfSampler(50, 0.9, rng=np.random.default_rng(7)).sample(100)
        assert (a == b).all()

    def test_deterministic_without_explicit_rng(self):
        # The no-argument path must be seeded too: an unseeded fallback
        # here would silently break whole-package reproducibility.
        a = ZipfSampler(50, 0.9).sample(100)
        b = ZipfSampler(50, 0.9).sample(100)
        assert (a == b).all()
        c = ZipfSampler(50, 0.9, seed=1).sample(100)
        assert not (a == c).all()

    def test_rejects_non_positive_count(self):
        sampler = ZipfSampler(10, 1.0)
        with pytest.raises(ValueError):
            sampler.sample(0)


class TestLognormalSizes:
    def test_bounds_respected(self):
        rng = np.random.default_rng(3)
        sizes = lognormal_sizes(5000, 1e6, 1.5, 1e8, min_bytes=1024, rng=rng)
        assert sizes.min() >= 1024
        assert sizes.max() <= 1e8

    def test_mean_approximately_matches(self):
        rng = np.random.default_rng(4)
        sizes = lognormal_sizes(20_000, 1e6, 1.2, 1e9, rng=rng)
        assert sizes.mean() == pytest.approx(1e6, rel=0.15)

    def test_heavy_tail_present(self):
        rng = np.random.default_rng(5)
        sizes = lognormal_sizes(20_000, 1e6, 2.0, 1e10, rng=rng)
        assert sizes.max() > 20 * sizes.mean()

    def test_integer_output(self):
        sizes = lognormal_sizes(10, 1e6, 1.0, 1e8, rng=np.random.default_rng(6))
        assert sizes.dtype == np.int64

    def test_deterministic_without_explicit_rng(self):
        a = lognormal_sizes(500, 1e6, 1.2, 1e8)
        b = lognormal_sizes(500, 1e6, 1.2, 1e8)
        assert (a == b).all()
        c = lognormal_sizes(500, 1e6, 1.2, 1e8, seed=9)
        assert not (a == c).all()

    @pytest.mark.parametrize(
        "count,mean,maximum", [(0, 1e6, 1e8), (10, 0, 1e8), (10, 1e6, 1e3)]
    )
    def test_rejects_bad_arguments(self, count, mean, maximum):
        with pytest.raises(ValueError):
            lognormal_sizes(count, mean, 1.0, maximum)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=500),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)
def test_property_weights_valid_distribution(n, alpha):
    weights = zipf_weights(n, alpha)
    assert weights.shape == (n,)
    assert (weights > 0).all()
    assert weights.sum() == pytest.approx(1.0)
