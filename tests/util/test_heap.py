"""LazyHeap: ordering, updates, lazy deletion and compaction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.heap import LazyHeap


class TestBasics:
    def test_empty_heap(self):
        heap = LazyHeap()
        assert len(heap) == 0
        with pytest.raises(IndexError):
            heap.pop()
        with pytest.raises(IndexError):
            heap.peek()

    def test_push_pop_single(self):
        heap = LazyHeap()
        heap.push(1, 2.5)
        assert heap.peek() == (1, 2.5)
        assert heap.pop() == (1, 2.5)
        assert len(heap) == 0

    def test_pops_in_priority_order(self):
        heap = LazyHeap()
        for key, priority in [(1, 3.0), (2, 1.0), (3, 2.0)]:
            heap.push(key, priority)
        assert [heap.pop()[0] for _ in range(3)] == [2, 3, 1]

    def test_update_changes_order(self):
        heap = LazyHeap()
        heap.push(1, 1.0)
        heap.push(2, 2.0)
        heap.push(1, 3.0)  # update key 1 upward
        assert heap.pop() == (2, 2.0)
        assert heap.pop() == (1, 3.0)

    def test_fifo_tie_break(self):
        heap = LazyHeap()
        heap.push(10, 1.0)
        heap.push(20, 1.0)
        heap.push(30, 1.0)
        assert [heap.pop()[0] for _ in range(3)] == [10, 20, 30]

    def test_contains_and_priority(self):
        heap = LazyHeap()
        heap.push(5, 7.0)
        assert 5 in heap
        assert heap.priority(5) == 7.0
        assert 6 not in heap

    def test_remove(self):
        heap = LazyHeap()
        heap.push(1, 1.0)
        heap.push(2, 2.0)
        heap.remove(1)
        assert 1 not in heap
        assert heap.pop() == (2, 2.0)

    def test_remove_missing_raises(self):
        heap = LazyHeap()
        with pytest.raises(KeyError):
            heap.remove(404)

    def test_clear(self):
        heap = LazyHeap()
        heap.push(1, 1.0)
        heap.clear()
        assert len(heap) == 0

    def test_peek_skips_stale_entries(self):
        heap = LazyHeap()
        heap.push(1, 1.0)
        heap.push(1, 5.0)  # stale (1, 1.0) remains inside
        heap.push(2, 3.0)
        assert heap.peek() == (2, 3.0)

    def test_iteration_yields_live_keys(self):
        heap = LazyHeap()
        heap.push(1, 1.0)
        heap.push(2, 2.0)
        heap.remove(1)
        assert set(heap) == {2}


class TestCompaction:
    def test_many_updates_stay_correct(self):
        heap = LazyHeap()
        for round_index in range(50):
            for key in range(20):
                heap.push(key, float((key * 31 + round_index) % 17))
        # After heavy churn the heap still orders correctly.
        drained = [heap.pop() for _ in range(20)]
        priorities = [priority for _, priority in drained]
        assert priorities == sorted(priorities)
        assert len(heap) == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        max_size=120,
    )
)
def test_property_pop_order_matches_final_priorities(operations):
    heap = LazyHeap()
    final: dict[int, float] = {}
    for key, priority in operations:
        heap.push(key, priority)
        final[key] = priority
    drained = []
    while len(heap):
        drained.append(heap.pop())
    assert {key for key, _ in drained} == set(final)
    priorities = [priority for _, priority in drained]
    assert priorities == sorted(priorities)
    for key, priority in drained:
        assert final[key] == priority
