"""Caffeine emulation (Appendix A.3): W-TinyLFU baseline vs LHR."""

import pytest

from repro.proto.caffeine import (
    make_caffeine_baseline,
    make_caffeine_lhr,
    run_caffeine,
)
from repro.policies.tinylfu import WTinyLfuCache
from repro.core.lhr import LhrCache


class TestFactories:
    def test_baseline_uses_wtinylfu(self):
        server = make_caffeine_baseline(10_000)
        assert isinstance(server.policy, WTinyLfuCache)
        assert server.uses_learning is False

    def test_lhr_variant(self):
        server = make_caffeine_lhr(10_000, lhr_kwargs={"num_irts": 10})
        assert isinstance(server.policy, LhrCache)
        assert server.policy.num_irts == 10
        assert server.uses_learning is True


class TestRunCaffeine:
    @pytest.fixture(scope="class")
    def report_pair(self, production_trace, production_capacity):
        baseline = run_caffeine(
            make_caffeine_baseline(production_capacity),
            production_trace,
            "caffeine",
            window_requests=500,
        )
        lhr = run_caffeine(
            make_caffeine_lhr(production_capacity, lhr_kwargs={"seed": 0}),
            production_trace,
            "lhr",
            window_requests=500,
        )
        return baseline, lhr

    def test_lhr_beats_caffeine_hit_probability(self, report_pair):
        baseline, lhr = report_pair
        assert lhr.content_hit_percent > baseline.content_hit_percent

    def test_traffic_accounting(self, report_pair, production_trace):
        baseline, _ = report_pair
        assert baseline.traffic_gbps > 0
        # All traffic must be bounded by total requested bytes / duration.
        ceiling = production_trace.total_bytes() * 8 / production_trace.duration / 1e9
        assert baseline.traffic_gbps <= ceiling

    def test_latency_percentile_ordering(self, report_pair):
        baseline, lhr = report_pair
        for report in (baseline, lhr):
            assert report.mean_latency_ms <= report.p99_latency_ms
            assert report.p90_latency_ms <= report.p99_latency_ms

    def test_memory_includes_java_heap_baseline(self, report_pair):
        baseline, _ = report_pair
        assert baseline.peak_mem_gb >= 3.0  # base process bytes

    def test_window_series_present(self, report_pair):
        baseline, _ = report_pair
        assert len(baseline.window_hit_ratios) >= 5
