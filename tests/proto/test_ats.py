"""ATS emulation: the Section 6.1 request path and Table 2 accounting."""

import pytest

from repro.core.lhr import LhrCache
from repro.policies.classic import LruCache
from repro.proto.ats import AtsServer, CostModel, make_ats_baseline, run_prototype
from repro.proto.origin import OriginServer
from repro.traces.request import Request


def req(obj_id, time, size=100):
    return Request(time=time, obj_id=obj_id, size=size)


class TestRequestPath:
    def test_miss_fetches_from_origin(self):
        server = make_ats_baseline(10_000)
        outcome = server.serve(req(1, time=0.0))
        assert outcome.hit is False
        assert outcome.wan_bytes == 100
        assert server.origin.stats.fetches == 1

    def test_fresh_hit_serves_locally(self):
        server = make_ats_baseline(10_000)
        server.serve(req(1, time=0.0))
        outcome = server.serve(req(1, time=1.0))
        assert outcome.hit is True
        assert outcome.wan_bytes == 0

    def test_hit_latency_below_miss_latency(self):
        server = make_ats_baseline(10_000)
        miss = server.serve(req(1, time=0.0))
        hit = server.serve(req(1, time=1.0))
        assert hit.latency_seconds < miss.latency_seconds

    def test_stale_content_revalidated(self):
        origin = OriginServer(update_probability=0.0, seed=0)
        server = AtsServer(
            LruCache(10_000), freshness_lifetime=10.0, origin=origin,
            uses_learning=False,
        )
        server.serve(req(1, time=0.0))
        outcome = server.serve(req(1, time=100.0))  # stale: 100 > 10
        assert outcome.hit is True
        assert origin.stats.revalidations == 1
        assert outcome.wan_bytes == 0  # 304: still fresh

    def test_changed_content_refetched(self):
        origin = OriginServer(update_probability=1.0, seed=0)
        server = AtsServer(
            LruCache(10_000), freshness_lifetime=10.0, origin=origin,
            uses_learning=False,
        )
        server.serve(req(1, time=0.0))
        outcome = server.serve(req(1, time=100.0))
        assert outcome.hit is True  # served after refetch
        assert outcome.wan_bytes == 100
        assert origin.stats.refetches == 1

    def test_ram_cache_skips_device(self):
        server = make_ats_baseline(10_000, ram_bytes=1000)
        server.serve(req(1, time=0.0))
        hit = server.serve(req(1, time=1.0))  # in RAM
        assert hit.device_seconds == 0.0

    def test_learning_detected_automatically(self):
        assert AtsServer(LhrCache(1000)).uses_learning is True
        assert AtsServer(LruCache(1000)).uses_learning is False

    def test_learning_costs_more_cpu(self):
        base_req = req(1, time=0.0, size=1 << 20)
        lhr_server = AtsServer(LhrCache(10 << 20))
        ats_server = make_ats_baseline(10 << 20)
        lhr_cpu = lhr_server.serve(base_req).cpu_seconds
        ats_cpu = ats_server.serve(base_req).cpu_seconds
        assert lhr_cpu > 2 * ats_cpu


class TestMemoryAccounting:
    def test_memory_includes_policy_metadata(self):
        server = make_ats_baseline(10_000)
        base = server.memory_bytes()
        for i in range(50):
            server.serve(req(i, time=float(i)))
        assert server.memory_bytes() > base


class TestRunPrototype:
    @pytest.fixture(scope="class")
    def report_pair(self, production_trace, production_capacity):
        ats = run_prototype(
            make_ats_baseline(production_capacity),
            production_trace,
            "ats",
            window_requests=500,
        )
        lhr = run_prototype(
            AtsServer(LhrCache(production_capacity, seed=0)),
            production_trace,
            "lhr",
            window_requests=500,
        )
        return ats, lhr

    def test_lhr_beats_ats_hit_probability(self, report_pair):
        ats, lhr = report_pair
        assert lhr.content_hit_percent > ats.content_hit_percent

    def test_lhr_costs_more_cpu(self, report_pair):
        ats, lhr = report_pair
        assert lhr.peak_cpu_percent > ats.peak_cpu_percent

    def test_cpu_in_plausible_range(self, report_pair):
        ats, lhr = report_pair
        assert 0.0 < ats.peak_cpu_percent < 50.0
        assert 0.0 < lhr.peak_cpu_percent < 80.0

    def test_window_series_covers_trace(self, report_pair, production_trace):
        ats, _ = report_pair
        assert len(ats.window_hit_ratios) == pytest.approx(
            len(production_trace) / 500, abs=1
        )
        assert all(0.0 <= ratio <= 1.0 for ratio in ats.window_hit_ratios)

    def test_lhr_window_series_improves_over_time(self, report_pair):
        _, lhr = report_pair
        first = lhr.window_hit_ratios[0]
        later = max(lhr.window_hit_ratios[2:])
        assert later > first

    def test_report_row_keys(self, report_pair):
        row = report_pair[0].as_row()
        assert set(row) >= {
            "throughput_gbps",
            "peak_cpu_percent",
            "peak_mem_gb",
            "p90_latency_ms",
            "content_hit_percent",
        }


class TestRamCache:
    def test_oversized_object_ignored(self):
        from repro.proto.ats import _RamCache

        ram = _RamCache(100)
        ram.put(1, 500)
        assert not ram.get(1)
        assert ram.used_bytes == 0

    def test_lru_eviction(self):
        from repro.proto.ats import _RamCache

        ram = _RamCache(30)
        ram.put(1, 10)
        ram.put(2, 10)
        ram.put(3, 10)
        ram.get(1)  # refresh
        ram.put(4, 10)  # evicts 2
        assert ram.get(1) and not ram.get(2)

    def test_duplicate_put_refreshes(self):
        from repro.proto.ats import _RamCache

        ram = _RamCache(20)
        ram.put(1, 10)
        ram.put(2, 10)
        ram.put(1, 10)  # refresh, no double count
        assert ram.used_bytes == 20
        ram.put(3, 10)  # evicts 2 (LRU after 1's refresh)
        assert ram.get(1) and not ram.get(2)

    def test_drop(self):
        from repro.proto.ats import _RamCache

        ram = _RamCache(20)
        ram.put(1, 10)
        ram.drop(1)
        assert ram.used_bytes == 0
        ram.drop(99)  # idempotent


class TestCostModel:
    def test_learning_multiplier_applied(self):
        from repro.proto.ats import CostModel

        costs = CostModel()
        server_plain = make_ats_baseline(1 << 30, cost_model=costs)
        request = req(1, time=0.0, size=1 << 20)
        plain_cpu = server_plain._cpu_cost(request, hit=False)
        learning = AtsServer(LhrCache(1 << 30), cost_model=costs)
        learned_cpu = learning._cpu_cost(request, hit=False)
        assert learned_cpu > plain_cpu + costs.learning_seconds_per_request / 2

    def test_cpu_scales_with_size(self):
        server = make_ats_baseline(1 << 30)
        small = server._cpu_cost(req(1, time=0.0, size=1 << 10), hit=True)
        large = server._cpu_cost(req(2, time=0.0, size=64 << 20), hit=True)
        assert large > small
