"""Consistent-hash ring and CDN cluster."""

import pytest

from repro.proto.cluster import CdnCluster, ConsistentHashRing
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def req(obj_id, time=0.0, size=10):
    return Request(time=time, obj_id=obj_id, size=size)


class TestRing:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_rejects_bad_virtual_nodes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], virtual_nodes=0)

    def test_rejects_duplicate_node(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")

    def test_deterministic_assignment(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.node_for(42) == ring.node_for(42)

    def test_all_nodes_receive_keys(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], virtual_nodes=128)
        owners = {ring.node_for(key) for key in range(2000)}
        assert owners == {"a", "b", "c", "d"}

    def test_balance_with_virtual_nodes(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(8)], virtual_nodes=256)
        counts = {}
        for key in range(20_000):
            counts[ring.node_for(key)] = counts.get(ring.node_for(key), 0) + 1
        loads = list(counts.values())
        assert max(loads) / (sum(loads) / len(loads)) < 1.6

    def test_replica_sets_distinct(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        replicas = ring.nodes_for(7, 3)
        assert len(replicas) == len(set(replicas)) == 3

    def test_replica_count_clamped_to_nodes(self):
        ring = ConsistentHashRing(["a", "b"])
        assert len(ring.nodes_for(1, 5)) == 2

    def test_remove_node_minimal_disruption(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], virtual_nodes=128)
        before = {key: ring.node_for(key) for key in range(3000)}
        ring.remove_node("b")
        moved = sum(
            1 for key, owner in before.items()
            if owner != "b" and ring.node_for(key) != owner
        )
        # Consistent hashing: keys not owned by the removed node stay put.
        assert moved == 0

    def test_remove_missing_raises(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(KeyError):
            ring.remove_node("zzz")


class TestCluster:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            CdnCluster(0, 100)
        with pytest.raises(ValueError):
            CdnCluster(2, 100, replication=0)

    def test_request_routed_consistently(self):
        cluster = CdnCluster(4, 1000, policy="lru")
        cluster.serve(req(5))
        owner = cluster.ring.node_for(5)
        assert cluster.nodes[owner].contains(5)
        for name, node in cluster.nodes.items():
            if name != owner:
                assert not node.contains(5)

    def test_hit_after_admission(self):
        cluster = CdnCluster(3, 1000)
        assert cluster.serve(req(1, time=0.0)) is False
        assert cluster.serve(req(1, time=1.0)) is True
        assert cluster.hits == 1 and cluster.misses == 1

    def test_aggregate_counters(self):
        cluster = CdnCluster(4, 1 << 18)
        trace = irm_trace(2000, 100, mean_size=1 << 10, seed=2)
        cluster.process(trace)
        assert cluster.hits + cluster.misses == len(trace)
        assert 0.0 < cluster.object_hit_ratio < 1.0
        assert sum(cluster.requests_per_node.values()) == len(trace)

    def test_fewer_larger_nodes_hit_more(self):
        """Classic sharding result: for a fixed byte budget, consolidation
        beats fragmentation on hit ratio."""
        trace = irm_trace(6000, 300, alpha=0.9, mean_size=1 << 12, seed=3)
        budget = int(0.2 * trace.unique_bytes())
        few = CdnCluster(2, budget // 2)
        many = CdnCluster(16, budget // 16)
        few.process(trace)
        many.process(trace)
        assert few.object_hit_ratio >= many.object_hit_ratio - 0.01

    def test_node_failure_reroutes_and_cools(self):
        trace = irm_trace(3000, 150, mean_size=1 << 10, seed=4)
        cluster = CdnCluster(4, 1 << 19)
        cluster.process(trace)
        victim = next(iter(cluster.nodes))
        cluster.fail_node(victim)
        assert len(cluster.nodes) == 3
        assert victim not in cluster.ring.nodes
        # Keys previously on the victim now route to survivors (cold).
        cluster.process(trace)
        assert cluster.hits + cluster.misses == 2 * len(trace)

    def test_add_node_scales_out(self):
        cluster = CdnCluster(2, 1000)
        cluster.add_node("node-99")
        assert "node-99" in cluster.nodes
        assert len(cluster.ring) == 3

    def test_replication_serves_from_any_replica(self):
        cluster = CdnCluster(4, 1000, replication=2)
        cluster.serve(req(9, time=0.0))
        primary, secondary = cluster.ring.nodes_for(9, 2)
        assert cluster.nodes[primary].contains(9)
        # Manually place a copy at the secondary; a primary failure then
        # still serves the content.
        cluster.nodes[secondary].request(req(9, time=1.0))
        cluster.fail_node(primary)
        assert cluster.serve(req(9, time=2.0)) is True

    def test_report_and_imbalance(self):
        cluster = CdnCluster(4, 1 << 18, virtual_nodes=256)
        trace = irm_trace(4000, 400, mean_size=1 << 10, seed=5)
        cluster.process(trace)
        report = cluster.report()
        assert report["nodes"] == 4
        assert report["load_imbalance"] >= 1.0
        assert report["load_imbalance"] < 2.5

    def test_lhr_nodes_supported(self):
        trace = irm_trace(3000, 150, mean_size=1 << 11, seed=6)
        cluster = CdnCluster(
            2,
            int(0.1 * trace.unique_bytes()),
            policy="lhr",
            policy_kwargs={"min_window_requests": 256, "seed": 0},
        )
        cluster.process(trace)
        assert 0.0 < cluster.object_hit_ratio < 1.0
