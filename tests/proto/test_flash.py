"""Emulated flash layer: IO accounting and service times."""

import pytest

from repro.proto.flash import FlashStore


class TestConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlashStore(0)


class TestReadsWrites:
    def test_read_before_write_raises(self):
        flash = FlashStore(1000)
        with pytest.raises(KeyError):
            flash.read(1, 100)

    def test_write_then_read(self):
        flash = FlashStore(1000)
        write_time = flash.write(1, 100)
        assert 1 in flash
        read_time = flash.read(1, 100)
        assert write_time > 0 and read_time > 0
        assert flash.stats.reads == 1
        assert flash.stats.writes == 1
        assert flash.stats.read_bytes == 100
        assert flash.stats.write_bytes == 100

    def test_read_time_affine_in_size(self):
        flash = FlashStore(1 << 30, read_bandwidth=1e9, read_latency=1e-4)
        flash.write(1, 1000)
        flash.write(2, 2_000_000)
        small = flash.read(1, 1000)
        large = flash.read(2, 2_000_000)
        assert large > small
        assert small >= 1e-4  # fixed latency floor

    def test_sequential_writes_amortize_fixed_cost(self):
        segment = 1 << 20
        flash = FlashStore(1 << 30, segment_bytes=segment, write_latency=1e-3)
        # Many small writes within one segment: no fixed cost charged yet.
        total_small = sum(flash.write(i, 1024) for i in range(10))
        assert total_small < 1e-3
        # Crossing the segment boundary pays the erase/flush cost.
        big = flash.write(999, segment)
        assert big >= 1e-3

    def test_discard(self):
        flash = FlashStore(1000)
        flash.write(1, 10)
        flash.discard(1)
        assert 1 not in flash
        flash.discard(404)  # idempotent

    def test_write_head_wraps(self):
        flash = FlashStore(100)
        for i in range(10):
            flash.write(i, 30)
        assert flash.stats.writes == 10  # log wraps without error
