"""Origin server model: fetch and revalidation accounting."""

import pytest

from repro.proto.origin import OriginServer


class TestConstruction:
    def test_rejects_bad_update_probability(self):
        with pytest.raises(ValueError):
            OriginServer(update_probability=1.5)


class TestFetch:
    def test_fetch_accounting(self):
        origin = OriginServer()
        origin.fetch(1, 100)
        origin.fetch(2, 50)
        assert origin.stats.fetches == 2
        assert origin.stats.fetch_bytes == 150
        assert origin.stats.wan_bytes == 150

    def test_fetch_returns_version(self):
        origin = OriginServer()
        assert origin.fetch(1, 10) == 0


class TestRevalidation:
    def test_immutable_content_always_fresh(self):
        origin = OriginServer(update_probability=0.0, seed=0)
        origin.fetch(1, 100)
        assert origin.revalidate(1, cached_version=0, size=100) is True
        assert origin.stats.revalidations == 1
        assert origin.stats.refetches == 0
        assert origin.stats.fetch_bytes == 100  # only the original fetch

    def test_mutable_content_triggers_refetch(self):
        origin = OriginServer(update_probability=1.0, seed=0)
        origin.fetch(1, 100)
        assert origin.revalidate(1, cached_version=0, size=100) is False
        assert origin.stats.refetches == 1
        assert origin.stats.fetch_bytes == 200  # original + refetch

    def test_stale_version_detected_without_update(self):
        origin = OriginServer(update_probability=0.0, seed=0)
        origin._versions[1] = 3
        assert origin.revalidate(1, cached_version=1, size=50) is False

    def test_version_monotone(self):
        origin = OriginServer(update_probability=1.0, seed=1)
        versions = []
        for _ in range(5):
            origin.revalidate(7, cached_version=-1, size=10)
            versions.append(origin.version(7))
        assert versions == sorted(versions)
        assert versions[-1] >= 5
