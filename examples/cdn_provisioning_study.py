#!/usr/bin/env python3
"""Cache-provisioning study: which policy, and how much cache?

The question a CDN operator actually asks.  For one workload this sweeps
cache sizes across an order of magnitude, runs the strongest policies at
each size, and brackets them between the offline bounds — so you can read
off (a) the policy to deploy and (b) where extra gigabytes stop paying.

Run:  python examples/cdn_provisioning_study.py [trace] [scale]
      trace in {cdn-a, cdn-b, cdn-c, wiki}, default cdn-b
"""

import sys

from repro import generate_production_trace, hro_bound, run_comparison
from repro.bounds import belady_size, infinite_cap
from repro.sim import best_policy

GB = 1 << 30
POLICIES = ("lhr", "adaptsize", "lfu-da", "w-tinylfu", "lru")


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "cdn-b"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01
    trace = generate_production_trace(trace_name, scale=scale, seed=3)
    unique = trace.unique_bytes()
    ceiling = infinite_cap(trace.requests)
    print(f"{trace_name}: {len(trace)} requests, {unique / GB:.1f} GB unique bytes")
    print(f"infinite-cache ceiling: {ceiling.hit_ratio * 100:.1f}% object hits\n")

    fractions = (0.01, 0.02, 0.05, 0.10, 0.20)
    header = f"{'cache':>9}  " + "".join(f"{name:>11}" for name in POLICIES)
    print(header + f"{'belady-sz':>11}{'hro':>9}   winner")
    print("-" * (len(header) + 32))
    for fraction in fractions:
        capacity = max(int(unique * fraction), 1)
        results = run_comparison(trace, POLICIES, [capacity])
        offline = belady_size(trace.requests, capacity)
        online_bound = hro_bound(trace, capacity, min_window_requests=512)
        cells = "".join(f"{r.object_hit_ratio:>11.3f}" for r in results)
        winner = best_policy(results).policy
        print(
            f"{capacity / GB:>7.1f}GB  {cells}"
            f"{offline.hit_ratio:>11.3f}{online_bound.hit_ratio:>9.3f}   {winner}"
        )

    print(
        "\nReading the table: pick the policy column that saturates first;"
        " the belady-size/hro columns show how much headroom any online"
        " policy could still claim at that size."
    )


if __name__ == "__main__":
    main()
