#!/usr/bin/env python3
"""Warm-starting LHR from a checkpoint (operational extension).

A restarted cache node loses its learned state and spends its first
sliding windows in admit-all bootstrap.  This example trains LHR on the
first half of a trace, checkpoints the learned state (admission model,
tuned threshold, detector state) to JSON, restores it into a fresh cache
and compares cold vs warm behaviour on the second half.

Run:  python examples/warm_start.py
"""

import tempfile
from pathlib import Path

from repro import generate_production_trace
from repro.core import LhrCache, load_lhr_checkpoint, save_lhr_checkpoint
from repro.sim import simulate
from repro.traces.transform import split


def main() -> None:
    trace = generate_production_trace("cdn-b", scale=0.01, seed=29)
    capacity = int(0.05 * trace.unique_bytes())
    head, tail = split(trace, 0.5)
    print(
        f"cdn-b stand-in: {len(head)} warmup + {len(tail)} evaluation "
        f"requests, cache {capacity >> 20} MB\n"
    )

    # Day 1: a node learns on live traffic, then checkpoints at shutdown.
    veteran = LhrCache(capacity, seed=0)
    veteran.process(head)
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_path = Path(tmp) / "lhr-checkpoint.json"
        save_lhr_checkpoint(veteran, checkpoint_path)
        size_kb = checkpoint_path.stat().st_size / 1024
        print(
            f"checkpoint: {size_kb:.1f} KB "
            f"(model of {veteran._model.num_trees} trees, "
            f"delta={veteran.delta:.2f}, "
            f"{veteran.windows_processed} windows learned)\n"
        )

        # Day 2: a cold node vs a node restored from the checkpoint.
        cold = LhrCache(capacity, seed=0)
        warm = load_lhr_checkpoint(LhrCache(capacity, seed=0), checkpoint_path)

    window = max(len(tail) // 10, 100)
    cold_result = simulate(cold, tail, window_requests=window)
    warm_result = simulate(warm, tail, window_requests=window)

    print(f"{'':<14}{'cold start':>12}{'warm start':>12}")
    print(f"{'overall hit':<14}{cold_result.object_hit_ratio:>12.3f}"
          f"{warm_result.object_hit_ratio:>12.3f}")
    for i in range(min(4, len(cold_result.windows))):
        print(f"{'window ' + str(i):<14}"
              f"{cold_result.windows[i].hit_ratio:>12.3f}"
              f"{warm_result.windows[i].hit_ratio:>12.3f}")
    print(f"{'admissions':<14}{cold.admissions:>12}{warm.admissions:>12}")
    print(
        "\nThe warm node filters admissions from the first request; the"
        " cold node admits everything until its first window closes."
    )


if __name__ == "__main__":
    main()
