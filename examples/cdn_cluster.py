#!/usr/bin/env python3
"""A CDN point of presence: sharding, node failure, and LHR at fleet scale.

Models a PoP of cache nodes behind consistent-hash routing and walks
through three operator questions:

1. sharding trade-off — for a fixed byte budget, how does node count
   affect the aggregate hit ratio and load balance?
2. policy choice at fleet scale — LRU vs LHR nodes on the same layout;
3. failure transient — kill a node mid-trace and watch the hit ratio
   dip while the rerouted key range warms up on the survivors.

Run:  python examples/cdn_cluster.py
"""

from repro import generate_production_trace
from repro.proto import CdnCluster
from repro.traces.transform import split

GB = 1 << 30


def main() -> None:
    trace = generate_production_trace("cdn-a", scale=0.01, seed=37)
    budget = int(0.15 * trace.unique_bytes())
    print(
        f"cdn-a stand-in: {len(trace)} requests; total cache budget "
        f"{budget / GB:.1f} GB across the PoP\n"
    )

    # 1. Sharding trade-off.
    print("sharding the same byte budget:")
    print(f"{'nodes':>7}{'hit ratio':>11}{'imbalance':>11}")
    for num_nodes in (1, 2, 4, 8, 16):
        cluster = CdnCluster(num_nodes, budget // num_nodes, policy="lru")
        cluster.process(trace)
        report = cluster.report()
        print(
            f"{num_nodes:>7}{report['object_hit_ratio']:>11.3f}"
            f"{report['load_imbalance']:>11.2f}"
        )

    # 2. Policy choice on a 4-node layout.
    print("\n4-node PoP, LRU vs LHR nodes:")
    for policy, kwargs in (
        ("lru", {}),
        ("lhr", {"policy_kwargs": {"min_window_requests": 256, "seed": 0}}),
    ):
        cluster = CdnCluster(4, budget // 4, policy=policy, **kwargs)
        cluster.process(trace)
        print(f"  {policy:<6} aggregate hit ratio {cluster.object_hit_ratio:.3f}")

    # 3. Failure transient.
    head, tail = split(trace, 0.5)
    cluster = CdnCluster(4, budget // 4, policy="lru")
    cluster.process(head)
    warm = cluster.object_hit_ratio
    cluster.fail_node("node-0")
    before_hits = cluster.hits
    before_requests = cluster.hits + cluster.misses
    cluster.process(tail)
    after = (cluster.hits - before_hits) / (
        cluster.hits + cluster.misses - before_requests
    )
    print(
        f"\nfailure transient: hit ratio {warm:.3f} with 4 nodes -> "
        f"{after:.3f} for the half-trace after losing node-0"
        f" (rerouted keys start cold on the survivors)"
    )


if __name__ == "__main__":
    main()
