#!/usr/bin/env python3
"""Quickstart: run LHR against LRU on a CDN-like workload.

Generates a small stand-in for the paper's CDN-A trace, simulates both
caches at the same capacity, and prints hit ratios, WAN traffic and the
online HRO upper bound for context.

Run:  python examples/quickstart.py
"""

from repro import LhrCache, generate_production_trace, hro_bound, make_policy, simulate

GB = 1 << 30


def main() -> None:
    # ~10k requests, statistically calibrated to the paper's CDN-A trace.
    trace = generate_production_trace("cdn-a", scale=0.01, seed=7)
    capacity = int(0.05 * trace.unique_bytes())
    print(f"trace: {trace.name}, {len(trace)} requests, "
          f"{trace.unique_bytes() / GB:.1f} GB unique, cache {capacity / GB:.2f} GB")

    lhr = simulate(LhrCache(capacity, seed=0), trace)
    lru = simulate(make_policy("lru", capacity), trace)
    bound = hro_bound(trace, capacity, min_window_requests=512)

    print(f"\n{'policy':<12}{'object hit':>12}{'byte hit':>10}{'WAN GB':>9}")
    for result in (lhr, lru):
        print(
            f"{result.policy:<12}{result.object_hit_ratio:>12.3f}"
            f"{result.byte_hit_ratio:>10.3f}"
            f"{result.wan_traffic_bytes / GB:>9.1f}"
        )
    print(f"{'hro bound':<12}{bound.hit_ratio:>12.3f}{bound.byte_hit_ratio:>10.3f}")

    gain = lhr.object_hit_ratio - lru.object_hit_ratio
    print(f"\nLHR improves the hit probability by {gain * 100:.1f} points over LRU;"
          f" the online optimum (HRO) caps any policy at"
          f" {bound.hit_ratio * 100:.1f}%.")


if __name__ == "__main__":
    main()
