#!/usr/bin/env python3
"""Admission audit: where do wasted admissions go?

Wraps several policies in the diagnostics instrumentation and compares
the quantities an admission policy exists to control: how many misses
were admitted, how many admissions died without serving a single hit
("dead on arrival"), and how long evicted objects survived.  Run on a
one-hit-heavy workload the differences are stark — this is the paper's
Section 2 motivation made measurable.

Run:  python examples/admission_audit.py
"""

from repro import generate_production_trace
from repro.sim import InstrumentedPolicy, build_policy

POLICIES = ("lru", "b-lru", "secondhit", "adaptsize", "w-tinylfu", "lhr")


def main() -> None:
    trace = generate_production_trace("cdn-a", scale=0.01, seed=41)
    capacity = int(0.05 * trace.unique_bytes())
    print(
        f"cdn-a stand-in: {len(trace)} requests, "
        f"cache {capacity >> 30} GB, "
        f"~55% one-hit contents by construction\n"
    )
    header = (
        f"{'policy':<11}{'hit ratio':>10}{'admit %':>9}{'DOA %':>8}"
        f"{'mean life (s)':>15}{'hits/life':>11}"
    )
    print(header)
    print("-" * len(header))
    for name in POLICIES:
        kwargs = {"seed": 0} if name == "lhr" else {}
        wrapped = InstrumentedPolicy(build_policy(name, capacity, **kwargs))
        wrapped.process(trace)
        report = wrapped.report()
        print(
            f"{name:<11}"
            f"{report['object_hit_ratio']:>10.3f}"
            f"{report['admission_ratio'] * 100:>9.1f}"
            f"{report['dead_on_arrival_ratio'] * 100:>8.1f}"
            f"{report['mean_eviction_age_s']:>15.0f}"
            f"{report['mean_hits_per_residency']:>11.2f}"
        )
    print(
        "\nReading: 'DOA %' counts admissions evicted with zero hits —"
        " pure waste.  Second-request filters cut it directly; AdaptSize"
        " and LHR win differently, by keeping what they admit resident"
        " far longer (mean life) so the useful admissions pay off."
    )


if __name__ == "__main__":
    main()
