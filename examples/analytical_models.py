#!/usr/bin/env python3
"""Analytical companions: hit-rate curves and Che's approximation.

Provisioning questions rarely justify a simulation sweep.  This example
shows the two analytical tools shipping with the package and checks them
against simulation on the same workload:

1. the exact LRU hit-rate curve from one reuse-distance pass
   (Mattson / footprint-descriptor methodology), including the inverse
   query "how much cache for a 40% hit ratio?", and
2. Che's approximation, which needs only per-content request rates —
   exactly the statistics HRO estimates online.

Run:  python examples/analytical_models.py
"""

import numpy as np

from repro import irm_trace
from repro.policies import make_policy
from repro.sim import fit_che_model, lru_hit_rate_curve
from repro.util.sampling import zipf_weights

NUM_CONTENTS = 400
NUM_REQUESTS = 20_000
ALPHA = 0.9

MB = 1 << 20


def main() -> None:
    trace = irm_trace(
        NUM_REQUESTS, NUM_CONTENTS, alpha=ALPHA, mean_size=1 << 14,
        size_sigma=1.0, seed=19,
    )
    unique_mb = trace.unique_bytes() / MB
    print(f"workload: {NUM_REQUESTS} requests, {unique_mb:.1f} MB unique\n")

    # 1. The exact curve, one pass.
    curve = lru_hit_rate_curve(trace, num_points=24)
    print("LRU hit-rate curve (exact, single pass):")
    print(f"{'cache MB':>10} {'object hit':>11} {'byte hit':>9}")
    for i in range(0, len(curve.capacities), 4):
        print(
            f"{curve.capacities[i] / MB:>10.2f}"
            f" {curve.object_hit_ratios[i]:>11.3f}"
            f" {curve.byte_hit_ratios[i]:>9.3f}"
        )
    for target in (0.3, 0.5, 0.7):
        needed = curve.capacity_for_hit_ratio(target)
        label = f"{needed / MB:.1f} MB" if np.isfinite(needed) else "unreachable"
        print(f"  -> cache for {target:.0%} object hits: {label}")

    # 2. Che's approximation from rates alone, validated by simulation.
    capacity = int(0.1 * trace.unique_bytes())
    weights = zipf_weights(NUM_CONTENTS, ALPHA)
    total_rate = len(trace) / trace.duration
    sizes = np.array(
        [trace.unique_contents().get(i, 1 << 14) for i in range(NUM_CONTENTS)],
        dtype=float,
    )
    che = fit_che_model(weights * total_rate, sizes, capacity)
    lru = make_policy("lru", capacity)
    lru.process(trace)
    print(f"\nChe's approximation at a {capacity / MB:.1f} MB cache:")
    print(f"  predicted object hit ratio  {che.object_hit_ratio:.3f}")
    print(f"  simulated  object hit ratio {lru.object_hit_ratio:.3f}")
    print(f"  characteristic time T_C     {che.characteristic_time:.1f} s")
    hot, cold = che.hit_probability(0), che.hit_probability(NUM_CONTENTS - 1)
    print(f"  per-content hit prob: rank 1 = {hot:.3f}, rank {NUM_CONTENTS} = {cold:.3f}")


if __name__ == "__main__":
    main()
