#!/usr/bin/env python3
"""Bring your own trace: file formats, characterization and bounds.

Shows the trace-ingestion workflow a downstream user follows to evaluate
caching on their own logs:

1. build a trace (here: synthetic, standing in for your access log),
2. write/read it in both supported formats (CSV and webcachesim),
3. characterize it (the Table-1 columns + popularity/IAT distributions),
4. bracket achievable hit ratios with offline/online bounds,
5. run the policy lineup.

Run:  python examples/custom_trace.py
"""

import tempfile
from pathlib import Path

from repro import generate_production_trace, hro_bound, run_comparison, summarize_trace
from repro.bounds import belady_size, infinite_cap, pfoo_lower, pfoo_upper
from repro.traces.loader import (
    load_trace_csv,
    load_trace_webcachesim,
    save_trace_csv,
    save_trace_webcachesim,
)
from repro.traces.stats import interarrival_distribution, popularity_distribution

GB = 1 << 30


def main() -> None:
    # 1. Your access log; substitute load_trace_csv("my_log.csv") here.
    trace = generate_production_trace("wiki", scale=0.005, seed=23)

    # 2. Round-trip through both on-disk formats.
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "trace.csv"
        wcs_path = Path(tmp) / "trace.tr"
        save_trace_csv(trace, csv_path)
        save_trace_webcachesim(trace, wcs_path)
        from_csv = load_trace_csv(csv_path)
        from_wcs = load_trace_webcachesim(wcs_path)
        assert len(from_csv) == len(from_wcs) == len(trace)
        print(f"round-tripped {len(trace)} requests through CSV and webcachesim\n")
        trace = from_csv

    # 3. Characterize (the paper's Table 1 columns).
    summary = summarize_trace(trace)
    for key, value in summary.as_table_row().items():
        print(f"  {key:<28} {value}")
    ranks, counts = popularity_distribution(trace)
    grid, ccdf = interarrival_distribution(trace)
    print(f"  top content serves {counts[0] / len(trace) * 100:.1f}% of requests;"
          f" median IAT {grid[(ccdf <= 0.5).argmax()]:.0f}s\n")

    # 4. Bound the achievable hit ratio at a candidate cache size.
    capacity = int(0.05 * trace.unique_bytes())
    print(f"bounds at a {capacity / GB:.2f} GB cache:")
    print(f"  infinite cache   {infinite_cap(trace.requests).hit_ratio:.3f}")
    print(f"  pfoo-u (offline) {pfoo_upper(trace.requests, capacity).hit_ratio:.3f}")
    print(f"  hro (online)     {hro_bound(trace, capacity, min_window_requests=512).hit_ratio:.3f}")
    print(f"  belady-size      {belady_size(trace.requests, capacity).hit_ratio:.3f}")
    print(f"  pfoo-l (offline) {pfoo_lower(trace.requests, capacity).hit_ratio:.3f}\n")

    # 5. The policy lineup.
    results = run_comparison(trace, ("lhr", "w-tinylfu", "adaptsize", "lru"), [capacity])
    print(f"{'policy':<12}{'object hit':>12}{'byte hit':>10}")
    for result in sorted(results, key=lambda r: -r.object_hit_ratio):
        print(f"{result.policy:<12}{result.object_hit_ratio:>12.3f}"
              f"{result.byte_hit_ratio:>10.3f}")


if __name__ == "__main__":
    main()
