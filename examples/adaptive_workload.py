#!/usr/bin/env python3
"""Adaptivity under popularity shifts (the Section 7.6 scenario).

Runs LHR and two baselines on the "Syn One" Markov-modulated workload —
the content ranking flips every r requests — and prints the per-window
hit-ratio time series plus LHR's detection/retraining activity, so you
can see the drift detector firing at the popularity flips and the model
recovering.

Run:  python examples/adaptive_workload.py
"""

from repro import syn_one_trace
from repro.sim import build_policy, simulate

NUM_REQUESTS = 30_000
REQUESTS_PER_STATE = 6_000
WINDOW = 1_500


def sparkline(values, lo, hi):
    blocks = "▁▂▃▄▅▆▇█"
    span = max(hi - lo, 1e-9)
    return "".join(
        blocks[min(int((v - lo) / span * (len(blocks) - 1)), len(blocks) - 1)]
        for v in values
    )


def main() -> None:
    trace = syn_one_trace(
        num_requests=NUM_REQUESTS,
        num_contents=1_000,
        requests_per_state=REQUESTS_PER_STATE,
        seed=5,
    )
    capacity = int(0.1 * trace.unique_bytes())
    print(
        f"syn-one: {NUM_REQUESTS} requests, ranking flips every "
        f"{REQUESTS_PER_STATE} requests, cache {capacity >> 20} MB\n"
    )

    series = {}
    lhr = build_policy("lhr", capacity, seed=0)
    result = simulate(lhr, trace, window_requests=WINDOW)
    series["lhr"] = [w.hit_ratio for w in result.windows]
    for name in ("lru", "lfu-da"):
        r = simulate(build_policy(name, capacity), trace, window_requests=WINDOW)
        series[name] = [w.hit_ratio for w in r.windows]

    lo = min(min(s) for s in series.values())
    hi = max(max(s) for s in series.values())
    flip_marks = "".join(
        "|" if (i * WINDOW) % REQUESTS_PER_STATE < WINDOW else " "
        for i in range(len(series["lhr"]))
    )
    print(f"{'flips':<8} {flip_marks}")
    for name, values in series.items():
        mean = sum(values) / len(values)
        print(f"{name:<8} {sparkline(values, lo, hi)}  mean={mean:.3f}")

    print(
        f"\nLHR internals: {lhr.windows_processed} sliding windows, "
        f"{lhr.trainings} retrainings "
        f"({lhr.detector.num_detections} drift detections), "
        f"final admission threshold delta={lhr.delta:.2f}"
    )
    alphas = ", ".join(f"{a:.2f}" for a in lhr.detector.alphas()[:12])
    print(f"estimated Zipf alpha per window: {alphas} ...")


if __name__ == "__main__":
    main()
