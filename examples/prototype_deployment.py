#!/usr/bin/env python3
"""Prototype deployment: LHR inside an (emulated) Apache Traffic Server.

Replays a production stand-in through the full ATS request path — RAM
cache, flash cache, freshness checks, origin revalidation — once with
the stock LRU cache and once with LHR swapped in, and prints the
Table-2-style report: hit probability, throughput, CPU, memory, latency
percentiles and WAN traffic.

Run:  python examples/prototype_deployment.py [trace]
"""

import sys

from repro import generate_production_trace
from repro.core import LhrCache
from repro.proto import AtsServer, make_ats_baseline, run_prototype
from repro.traces.production import PRODUCTION_SPECS

SCALE = 0.01


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "cdn-a"
    spec = PRODUCTION_SPECS[trace_name]
    trace = generate_production_trace(spec, scale=SCALE, seed=11)
    capacity = spec.scaled_cache_bytes(spec.prototype_cache_gb, SCALE)
    print(
        f"{trace_name}: {len(trace)} requests through the ATS request path, "
        f"cache {capacity >> 20} MB (paper: {spec.prototype_cache_gb} GB)\n"
    )

    reports = [
        run_prototype(
            AtsServer(LhrCache(capacity, seed=0)), trace, "lhr-prototype"
        ),
        run_prototype(make_ats_baseline(capacity), trace, "unmodified-ats"),
    ]

    metrics = [
        ("Content hit (%)", "content_hit_percent", "{:.2f}"),
        ("Throughput (Gbps)", "throughput_gbps", "{:.2f}"),
        ("Peak CPU (%)", "peak_cpu_percent", "{:.1f}"),
        ("Peak memory (GB)", "peak_mem_gb", "{:.2f}"),
        ("P90 latency (ms)", "p90_latency_ms", "{:.1f}"),
        ("P99 latency (ms)", "p99_latency_ms", "{:.1f}"),
        ("Mean latency (ms)", "mean_latency_ms", "{:.1f}"),
        ("WAN traffic (Gbps)", "traffic_gbps", "{:.3f}"),
    ]
    names = [report.system for report in reports]
    print(f"{'metric':<20}" + "".join(f"{name:>16}" for name in names))
    print("-" * (20 + 16 * len(names)))
    for label, attr, fmt in metrics:
        row = "".join(f"{fmt.format(getattr(r, attr)):>16}" for r in reports)
        print(f"{label:<20}{row}")

    lhr_series = reports[0].window_hit_ratios
    ats_series = reports[1].window_hit_ratios
    crossover = next(
        (i for i, (a, b) in enumerate(zip(lhr_series, ats_series)) if a > b),
        None,
    )
    if crossover is not None:
        print(
            f"\nLHR overtakes stock ATS at window {crossover} of "
            f"{len(lhr_series)} (the paper reports ~5 windows)."
        )


if __name__ == "__main__":
    main()
