"""Figure 7 — per-window content hit probability: LHR prototype vs ATS.

Paper finding: LHR overtakes the unmodified ATS within about five
sliding windows of data and keeps improving.
"""

from benchmarks.common import SCALE, TRACE_NAMES, emit, trace
from repro.core import LhrCache
from repro.proto import AtsServer, make_ats_baseline, run_prototype
from repro.traces.production import PRODUCTION_SPECS


def build_figure7():
    series = {}
    for name in TRACE_NAMES:
        t = trace(name)
        spec = PRODUCTION_SPECS[name]
        capacity = spec.scaled_cache_bytes(spec.prototype_cache_gb, SCALE)
        window = max(len(t) // 12, 200)
        ats = run_prototype(
            make_ats_baseline(capacity), t, "ats", window_requests=window
        )
        lhr = run_prototype(
            AtsServer(LhrCache(capacity, seed=0)), t, "lhr", window_requests=window
        )
        series[name] = (lhr.window_hit_ratios, ats.window_hit_ratios)
    return series


def _format(series):
    lines = []
    for name, (lhr, ats) in series.items():
        lines.append(f"{name}:")
        lines.append("  window  " + "  ".join(f"{i:>5d}" for i in range(len(lhr))))
        lines.append("  lhr     " + "  ".join(f"{v:5.3f}" for v in lhr))
        lines.append("  ats     " + "  ".join(f"{v:5.3f}" for v in ats))
    return "\n".join(lines)


def test_figure7(benchmark):
    series = benchmark.pedantic(build_figure7, rounds=1, iterations=1)
    emit("figure7", _format(series))
    for name, (lhr, ats) in series.items():
        assert len(lhr) == len(ats)
        # After the first half of the trace LHR dominates ATS overall.
        half = len(lhr) // 2
        lhr_late = sum(lhr[half:]) / len(lhr[half:])
        ats_late = sum(ats[half:]) / len(ats[half:])
        slack = 0.01 if name == "cdn-c" else 0.0
        assert lhr_late >= ats_late - slack, name
        # And LHR improves from its first window to its best later one.
        assert max(lhr[1:]) > lhr[0], name
