"""Figure 2 — bounds on OPT vs the best SOTA vs LHR (one scenario per trace).

Paper's finding: a 15-25% gap between the best SOTA and the tighter
offline bound; HRO sits *below* the offline bounds (tighter) yet above
every online policy; LHR closes part of the SOTA-to-bound gap.
"""

from benchmarks.common import (
    TRACE_NAMES,
    cache_bytes,
    compare,
    emit,
    format_rows,
    paper_cache_sizes,
    policy_kwargs,
    trace,
)
from repro.bounds import belady_size, pfoo_upper
from repro.core import hro_bound
from repro.policies import SOTA_POLICIES
from repro.sim import best_policy


def build_figure2():
    rows = []
    for name in TRACE_NAMES:
        t = trace(name)
        capacity = cache_bytes(name, paper_cache_sizes(name)[1])
        sota = best_policy(
            compare(t, SOTA_POLICIES, [capacity], policy_kwargs=policy_kwargs())
        )
        lhr = compare(t, ["lhr"], [capacity])[0]
        rows.append(
            {
                "trace": name,
                "best_sota": sota.policy,
                "sota_hit": round(sota.object_hit_ratio, 3),
                "lhr_hit": round(lhr.object_hit_ratio, 3),
                "hro_hit": round(hro_bound(t, capacity).hit_ratio, 3),
                "belady_size_hit": round(
                    belady_size(t.requests, capacity).hit_ratio, 3
                ),
                "pfoo_u_hit": round(pfoo_upper(t.requests, capacity).hit_ratio, 3),
            }
        )
    return rows


def test_figure2(benchmark):
    rows = benchmark.pedantic(build_figure2, rounds=1, iterations=1)
    emit("figure2", format_rows(rows))
    for row in rows:
        # LHR above or at the best SOTA (paper: +2-9%).  On CDN-C the
        # paper itself reports no significant improvement (one-hit-heavy
        # trace), so allow small noise there.
        slack = 0.02 if row["trace"] == "cdn-c" else 0.005
        assert row["lhr_hit"] >= row["sota_hit"] - slack, row
        # HRO upper-bounds LHR and every online policy.
        assert row["hro_hit"] >= row["lhr_hit"] - 0.02, row
        assert row["hro_hit"] >= row["sota_hit"] - 0.02, row
        # PFOO-U is the loosest (its relaxation dominates Bélády-size).
        assert row["pfoo_u_hit"] >= row["belady_size_hit"] - 0.02, row
        # A substantial SOTA-to-bound gap exists (paper: 15-25%).
        assert row["pfoo_u_hit"] - row["sota_hit"] > 0.05, row
