"""Table 4 + Figure 13 — LHR inside Caffeine vs the W-TinyLFU baseline.

Appendix A.3: with much smaller in-memory caches (64/128/16/128 GB),
LHR lifts the content hit probability by 2-6% over Caffeine at a modest
CPU premium, and the per-window hit series shows LHR pulling ahead.
"""

from benchmarks.common import SCALE, TRACE_NAMES, emit, format_rows, trace
from repro.proto import make_caffeine_baseline, make_caffeine_lhr, run_caffeine
from repro.traces.production import PRODUCTION_SPECS


def build_table4():
    rows = []
    series = {}
    for name in TRACE_NAMES:
        t = trace(name)
        spec = PRODUCTION_SPECS[name]
        capacity = spec.scaled_cache_bytes(spec.caffeine_cache_gb, SCALE)
        window = max(len(t) // 12, 200)
        lhr = run_caffeine(
            make_caffeine_lhr(capacity, lhr_kwargs={"seed": 0}),
            t,
            "lhr",
            window_requests=window,
        )
        caffeine = run_caffeine(
            make_caffeine_baseline(capacity), t, "caffeine", window_requests=window
        )
        rows.extend([lhr.as_row(), caffeine.as_row()])
        series[name] = (lhr.window_hit_ratios, caffeine.window_hit_ratios)
    return rows, series


def test_table4(benchmark):
    rows, series = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    window_lines = []
    for name, (lhr, caffeine) in series.items():
        window_lines.append(f"{name} per-window hit (figure 13):")
        window_lines.append("  lhr      " + "  ".join(f"{v:5.3f}" for v in lhr))
        window_lines.append("  caffeine " + "  ".join(f"{v:5.3f}" for v in caffeine))
    emit("table4", format_rows(rows) + "\n\n" + "\n".join(window_lines))
    by_key = {(row["system"], row["trace"]): row for row in rows}
    for name in TRACE_NAMES:
        lhr = by_key[("lhr", name)]
        caffeine = by_key[("caffeine", name)]
        slack = 1.0 if name == "cdn-c" else 0.0
        # Table 4 shapes: LHR wins content hit probability and overall
        # latency; throughput no worse; CPU somewhat higher.
        assert (
            lhr["content_hit_percent"] >= caffeine["content_hit_percent"] - slack
        ), name
        assert lhr["mean_latency_ms"] <= caffeine["mean_latency_ms"] * 1.03, name
        # Throughput tracks byte-hit ratio; see EXPERIMENTS.md for why the
        # stand-ins narrow LHR's byte-hit edge relative to the paper.
        assert lhr["throughput_gbps"] >= caffeine["throughput_gbps"] * 0.93, name
        assert lhr["peak_cpu_percent"] >= caffeine["peak_cpu_percent"] * 0.95, name
