"""Engineering benchmark: request-processing throughput per policy.

Not a paper experiment — this measures the *simulator's* requests/second
for representative policies, which determines how large a trace each
policy can replay in reasonable time (and documents the constant-factor
cost of the learning-based designs).  Uses pytest-benchmark's normal
multi-round timing, unlike the experiment benchmarks which run once.
"""

import os
import time

import pytest

from benchmarks.common import JOBS, SCALE, SEED, cache_bytes, trace
from benchmarks.telemetry import build_payload, emit_telemetry
from repro.sim import build_policy, run_comparison, simulate
from repro.traces.packed import PackedTrace
from repro.traces.request import Trace

#: (policy, constructor overrides) — a cheap classic, a heap-based
#: classic, a sketch-based filter, the paper's LHR and the heavyweight LRB.
PROFILES = [
    ("lru", {}),
    ("gdsf", {}),
    ("w-tinylfu", {}),
    ("lhd", {}),
    ("lhr", {"seed": 0}),
    ("lrb", {"training_batch": 4096, "max_training_data": 8192, "seed": 0}),
]

#: Per-policy timings accumulated across the parametrized runs, drained
#: into BENCH_throughput.json when the module finishes (REPRO_TELEMETRY=1).
_RUNS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def workload():
    t = trace("cdn-a")
    return list(t.requests[:4000])


@pytest.fixture(scope="module")
def packed_workload(workload):
    packed = PackedTrace.from_trace(Trace(workload, name="throughput"))
    packed.scalar_columns()  # pre-materialize outside the timed region
    return packed


@pytest.fixture(scope="module", autouse=True)
def _emit_module_telemetry():
    """Write the module's telemetry sidecar after every profile has run.

    The per-policy rounds land in ``extra``; the headline
    ``throughput_rps`` is total replayed requests over total replay time,
    which is what ``repro bench-compare`` gates on.
    """
    _RUNS.clear()
    yield
    if not _RUNS:
        return
    wall = sum(run["seconds"] for run in _RUNS.values())
    requests = sum(run["requests"] for run in _RUNS.values())
    payload = build_payload(
        "throughput",
        scale=SCALE,
        seed=SEED,
        jobs=JOBS,
        wall_seconds=wall,
        requests=requests,
        hit_ratios={
            f"{name}@{run['capacity']}": run["hit_ratio"]
            for name, run in _RUNS.items()
        },
        extra={
            "per_policy_rps": {
                name: round(run["requests"] / run["seconds"], 1)
                for name, run in _RUNS.items()
                if run["seconds"]
            }
        },
    )
    written = emit_telemetry(payload)
    if written is not None:
        print(f"\ntelemetry -> {written}")


@pytest.mark.parametrize("name,kwargs", PROFILES, ids=[p[0] for p in PROFILES])
def test_policy_throughput(benchmark, workload, name, kwargs):
    capacity = cache_bytes("cdn-a", 512)

    def replay():
        policy = build_policy(name, capacity, **kwargs)
        for req in workload:
            policy.request(req)
        return policy

    policy = benchmark.pedantic(replay, rounds=3, iterations=1)
    # Sanity: the run did real cache work.
    assert policy.hits + policy.misses == len(workload)
    benchmark.extra_info["requests_per_second"] = round(
        len(workload) / benchmark.stats.stats.mean
    )
    benchmark.extra_info["object_hit_ratio"] = round(policy.object_hit_ratio, 3)
    _RUNS[name] = {
        "capacity": capacity,
        "requests": len(workload),
        "seconds": benchmark.stats.stats.mean,
        "hit_ratio": round(policy.object_hit_ratio, 6),
    }


@pytest.mark.parametrize("name,kwargs", PROFILES, ids=[p[0] for p in PROFILES])
def test_policy_throughput_fastpath(
    benchmark, workload, packed_workload, name, kwargs
):
    """The columnar fast path: replay a ``PackedTrace`` through the engine
    (scalar kernels / span kernels, no per-request ``Request``)."""
    capacity = cache_bytes("cdn-a", 512)

    def replay():
        policy = build_policy(name, capacity, **kwargs)
        simulate(policy, packed_workload)
        return policy

    policy = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert policy.hits + policy.misses == len(workload)
    benchmark.extra_info["requests_per_second"] = round(
        len(workload) / benchmark.stats.stats.mean
    )
    benchmark.extra_info["object_hit_ratio"] = round(policy.object_hit_ratio, 3)
    _RUNS[f"{name}-fast"] = {
        "capacity": capacity,
        "requests": len(workload),
        "seconds": benchmark.stats.stats.mean,
        "hit_ratio": round(policy.object_hit_ratio, 6),
    }


#: Requests/second recorded by this benchmark at the commit *before* the
#: columnar fast path landed (BENCH_baseline.json history).  The fast
#: path's acceptance targets are pinned against these absolute numbers,
#: not against a regenerated baseline.
PRE_FASTPATH_RPS = {"lru": 917177.3, "lhr": 14489.7}

#: Required fast-path speedup over the pre-fast-path baseline.  The LHR
#: target is the batched-inference acceptance bar; CI runs this module
#: with REPRO_ASSERT_FASTPATH=0 (report-only) because shared runners
#: cannot hold the ratio steady — see docs/PERFORMANCE.md for the
#: measured numbers on an idle machine.
FASTPATH_TARGETS = {"lru": 3.0, "lhr": 4.0}


@pytest.mark.parametrize("name", ["lru", "lhr"])
def test_fast_path_speedup(benchmark, workload, packed_workload, name):
    """Columnar replay vs the pre-fast-path committed throughput.

    Asserts the acceptance targets — ≥3x for the classic (LRU), ≥1.5x
    for learning-augmented LHR — against the requests/second this same
    benchmark recorded before the fast path existed.  Results are also
    checked identical to the object path.  Set REPRO_ASSERT_FASTPATH=0
    to waive the ratio assertion on loaded or slower machines.
    """
    capacity = cache_bytes("cdn-a", 512)
    kwargs = {"seed": 0} if name == "lhr" else {}

    reference = build_policy(name, capacity, **kwargs)
    for req in workload:
        reference.request(req)

    def replay():
        policy = build_policy(name, capacity, **kwargs)
        simulate(policy, packed_workload)
        return policy

    policy = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert (policy.hits, policy.misses, policy.evictions) == (
        reference.hits,
        reference.misses,
        reference.evictions,
    )
    # pytest-benchmark keeps the fastest round in ``min``; use it for the
    # ratio so a single scheduler stall cannot fail the gate.
    rps = len(workload) / benchmark.stats.stats.min
    speedup = rps / PRE_FASTPATH_RPS[name]
    benchmark.extra_info.update(
        requests_per_second=round(rps),
        pre_fastpath_rps=PRE_FASTPATH_RPS[name],
        speedup=round(speedup, 2),
        target=FASTPATH_TARGETS[name],
    )
    print(
        f"\nfast path [{name}]: {rps:,.0f} rps vs pre-fast-path "
        f"{PRE_FASTPATH_RPS[name]:,.0f} rps = {speedup:.2f}x "
        f"(target {FASTPATH_TARGETS[name]}x)"
    )
    if os.environ.get("REPRO_ASSERT_FASTPATH", "1") != "0":
        assert speedup >= FASTPATH_TARGETS[name], (
            f"{name} fast path reached only {speedup:.2f}x of the "
            f"pre-fast-path baseline (target {FASTPATH_TARGETS[name]}x); "
            "set REPRO_ASSERT_FASTPATH=0 to waive on loaded machines"
        )


#: GBM inference variants measured by the micro-bench: the public batch
#: ``predict`` (flat-tree, vectorized sigmoid), the scalar ``predict_one``
#: loop, and ``predict_batch`` (flat-tree, scalar-exact sigmoid — the
#: variant the batched LHR backend calls).
GBM_VARIANTS = ["predict", "predict_one", "predict_batch"]


@pytest.mark.parametrize("variant", GBM_VARIANTS)
def test_gbm_inference_microbench(benchmark, variant):
    """Per-row inference cost of the three GBM prediction entry points.

    All three run over the same fitted model and probe matrix;
    ``predict_one`` and ``predict_batch`` must agree to float equality
    (``predict`` uses a vectorized sigmoid, so it is only checked to be
    finite — the exactness pin lives in tests/core/test_gbm.py).
    """
    import numpy as np

    from repro.core.gbm import GradientBoostingRegressor

    rng = np.random.default_rng(0)
    X = rng.random((2000, 23))
    y = (rng.random(2000) > 0.5).astype(float)
    model = GradientBoostingRegressor(
        n_estimators=32, max_depth=6, loss="logistic"
    ).fit(X, y)
    probes = rng.random((4096, 23))

    if variant == "predict":
        run = lambda: model.predict(probes)  # noqa: E731
    elif variant == "predict_one":
        run = lambda: [model.predict_one(row) for row in probes]  # noqa: E731
    else:
        run = lambda: model.predict_batch(probes)  # noqa: E731

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(out) == len(probes)
    assert np.isfinite(np.asarray(out)).all()
    if variant == "predict_batch":
        reference = [model.predict_one(row) for row in probes[:64]]
        assert np.asarray(out)[:64].tolist() == reference
    benchmark.extra_info["rows_per_second"] = round(
        len(probes) / benchmark.stats.stats.min
    )


#: ≥4-cell grid of compute-heavy cells for the parallel-sweep speedup
#: demonstration (cheap cells would measure pool overhead, not fan-out).
SWEEP_POLICIES = ["lru", "gdsf", "lhd", "s4lru"]


def test_parallel_sweep_speedup(benchmark):
    """Parallel `run_comparison` vs serial on the same grid.

    Asserts bit-identical results always; asserts the ≥2× speedup only
    on machines with ≥4 cores (set REPRO_ASSERT_SPEEDUP=0 to waive it on
    loaded CI runners).
    """
    t = trace("cdn-a")
    capacities = [cache_bytes("cdn-a", gb) for gb in (256, 1024)]
    jobs = min(4, os.cpu_count() or 1)

    serial_start = time.perf_counter()
    serial = run_comparison(t, SWEEP_POLICIES, capacities)
    serial_seconds = time.perf_counter() - serial_start

    parallel = benchmark.pedantic(
        lambda: run_comparison(t, SWEEP_POLICIES, capacities, parallel=jobs),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = benchmark.stats.stats.mean

    assert [
        (r.policy, r.capacity, r.counters()) for r in serial
    ] == [(r.policy, r.capacity, r.counters()) for r in parallel]

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    benchmark.extra_info.update(
        jobs=jobs,
        grid_cells=len(serial),
        serial_seconds=round(serial_seconds, 3),
        parallel_seconds=round(parallel_seconds, 3),
        speedup=round(speedup, 2),
    )
    print(
        f"\nparallel sweep: {len(serial)} cells, jobs={jobs}, "
        f"serial {serial_seconds:.2f}s -> parallel {parallel_seconds:.2f}s "
        f"({speedup:.2f}x)"
    )
    if jobs >= 4 and os.environ.get("REPRO_ASSERT_SPEEDUP", "1") != "0":
        assert speedup >= 2.0, (
            f"expected >=2x speedup with {jobs} workers, got {speedup:.2f}x"
        )
