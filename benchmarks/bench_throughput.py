"""Engineering benchmark: request-processing throughput per policy.

Not a paper experiment — this measures the *simulator's* requests/second
for representative policies, which determines how large a trace each
policy can replay in reasonable time (and documents the constant-factor
cost of the learning-based designs).  Uses pytest-benchmark's normal
multi-round timing, unlike the experiment benchmarks which run once.
"""

import pytest

from benchmarks.common import cache_bytes, trace
from repro.sim import build_policy

#: (policy, constructor overrides) — a cheap classic, a heap-based
#: classic, a sketch-based filter, the paper's LHR and the heavyweight LRB.
PROFILES = [
    ("lru", {}),
    ("gdsf", {}),
    ("w-tinylfu", {}),
    ("lhd", {}),
    ("lhr", {"seed": 0}),
    ("lrb", {"training_batch": 4096, "max_training_data": 8192, "seed": 0}),
]


@pytest.fixture(scope="module")
def workload():
    t = trace("cdn-a")
    return list(t.requests[:4000])


@pytest.mark.parametrize("name,kwargs", PROFILES, ids=[p[0] for p in PROFILES])
def test_policy_throughput(benchmark, workload, name, kwargs):
    capacity = cache_bytes("cdn-a", 512)

    def replay():
        policy = build_policy(name, capacity, **kwargs)
        for req in workload:
            policy.request(req)
        return policy

    policy = benchmark.pedantic(replay, rounds=3, iterations=1)
    # Sanity: the run did real cache work.
    assert policy.hits + policy.misses == len(workload)
    benchmark.extra_info["requests_per_second"] = round(
        len(workload) / benchmark.stats.stats.mean
    )
    benchmark.extra_info["object_hit_ratio"] = round(policy.object_hit_ratio, 3)
