"""Non-stationary workload lab benchmark: one churn scenario cell.

Not a paper experiment — this pins the lab's end-to-end cost and hit
ratios for a representative churn cell so ``repro bench-compare`` can
gate it like the stationary sweeps: the policy grid runs over a
churn scenario via the same ``run_comparison`` engine the benchmarks
use, and the telemetry sidecar (``BENCH_workloads.json``) carries the
per-cell hit ratios plus the drift/retrain counts in ``extra``.
"""

from benchmarks.common import COLLECTOR, JOBS, SCALE, SEED, emit, format_rows
from repro.workloads import ScenarioConfig, run_workload_lab

#: The lab grid for the sentinel cell: the classic baseline, the paper's
#: cache, and the sketch-based filter — cheap enough for CI at any scale.
POLICIES = ("lru", "lhr", "w-tinylfu")

#: Churn length scales with REPRO_SCALE like every other benchmark
#: (default 0.01 -> 8k requests; paper-ish scale at 1.0 -> 800k).
NUM_REQUESTS = max(int(800_000 * SCALE), 4000)


def run_lab():
    config = ScenarioConfig.make("churn", NUM_REQUESTS, SEED)
    return run_workload_lab([config], list(POLICIES), jobs=JOBS)


def test_workload_churn_cell(benchmark):
    report = benchmark.pedantic(run_lab, rounds=1, iterations=1)
    scenario = report.scenario("churn")
    rows = [cell.as_dict() for cell in scenario.cells]
    # The lab bypasses common.compare(), so feed the collector directly —
    # ScenarioCell carries the policy/capacity/hit-ratio fields the
    # telemetry sweep record reads.
    COLLECTOR.record_sweep(scenario.cells, benchmark.stats.stats.total)
    emit(
        "workloads",
        format_rows(rows),
        extra={
            "scenario": "churn",
            "num_requests": scenario.num_requests,
            "capacity": scenario.capacity,
            "cells": rows,
        },
    )

    lru = scenario.cell("lru")
    lhr = scenario.cell("lhr")
    # Churn is where learning from HRO pays: LHR must beat LRU, and its
    # drift pipeline must actually have run.
    assert lhr.object_hit_ratio > lru.object_hit_ratio
    assert lhr.drift_windows > 0
    assert lhr.retrains > 0
