"""Figure 6 — impact of content features (number of IRTs).

Sweeps the feature vector over {5, 10, 20, 30} inter-request times, as
the paper's '10d'/'20d'/'30d' configurations.  Paper finding: more IRTs
help with diminishing returns; 20 IRTs is the adopted default.
"""

from benchmarks.common import (
    TRACE_NAMES,
    cache_bytes,
    emit,
    format_rows,
    paper_cache_sizes,
    trace,
)
from repro.core import LhrCache

IRT_COUNTS = (5, 10, 20, 30)


def build_figure6():
    rows = []
    for name in TRACE_NAMES:
        t = trace(name)
        capacity = cache_bytes(name, paper_cache_sizes(name)[1])
        row = {"trace": name}
        for num_irts in IRT_COUNTS:
            cache = LhrCache(capacity, num_irts=num_irts, seed=0)
            cache.process(t)
            row[f"hit@{num_irts}irts"] = round(cache.object_hit_ratio, 3)
        # Improvement of the default (20) over the smallest configuration,
        # matching Figure 6's "improvement over 10 IRTs" framing.
        row["gain_20_over_5"] = round(row["hit@20irts"] - row["hit@5irts"], 3)
        rows.append(row)
    return rows


def test_figure6(benchmark):
    rows = benchmark.pedantic(build_figure6, rounds=1, iterations=1)
    emit("figure6", format_rows(rows))
    for row in rows:
        values = [row[f"hit@{k}irts"] for k in IRT_COUNTS]
        # Feature count is a second-order knob: configurations should sit
        # within a narrow band, with 20 IRTs competitive with the best.
        assert row["hit@20irts"] >= max(values) - 0.05, row
