"""Figure 1 — content popularity and inter-arrival time distributions.

Emits the rank/frequency series (left panel) and the inter-arrival CCDF
(right panel) for each trace, summarized at a handful of abscissae.
"""

import numpy as np

from benchmarks.common import TRACE_NAMES, emit, format_rows, trace
from repro.traces.stats import interarrival_distribution, popularity_distribution


def build_figure1():
    popularity_rows = []
    iat_rows = []
    for name in TRACE_NAMES:
        t = trace(name)
        ranks, counts = popularity_distribution(t)
        row = {"trace": name}
        for rank in (1, 10, 100, 1000):
            if rank <= counts.size:
                row[f"count@rank{rank}"] = int(counts[rank - 1])
        head = slice(0, max(min(50, counts.size // 10), 5))
        slope = np.polyfit(np.log(ranks[head]), np.log(counts[head] + 1e-9), 1)[0]
        row["loglog_head_slope"] = round(float(slope), 3)
        popularity_rows.append(row)

        grid, ccdf = interarrival_distribution(t)
        iat_row = {"trace": name}
        for quantile in (0.5, 0.9, 0.99):
            idx = int(np.searchsorted(-ccdf, -(1 - quantile)))
            idx = min(idx, grid.size - 1)
            iat_row[f"iat_p{int(quantile * 100)}_s"] = round(float(grid[idx]), 2)
        iat_rows.append(iat_row)
    return popularity_rows, iat_rows


def test_figure1(benchmark):
    popularity_rows, iat_rows = benchmark.pedantic(
        build_figure1, rounds=1, iterations=1
    )
    emit(
        "figure1",
        "Popularity (left panel):\n"
        + format_rows(popularity_rows)
        + "\n\nInter-arrival CCDF quantiles (right panel):\n"
        + format_rows(iat_rows),
    )
    # Shape checks: every trace is Zipf-like (negative log-log slope) and
    # CDN-C (weeks-long, thin popularity) has the flattest head.
    slopes = {row["trace"]: row["loglog_head_slope"] for row in popularity_rows}
    assert all(slope < 0 for slope in slopes.values())
    assert slopes["cdn-c"] >= min(slopes.values())
    # Inter-arrival spread spans orders of magnitude on every trace.
    for row in iat_rows:
        assert row["iat_p99_s"] > row["iat_p50_s"]
