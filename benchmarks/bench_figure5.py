"""Figure 5 — impact of the sliding-window size on LHR's hit probability.

Sweeps the window multiple over {1x, 2x, 4x, 8x} of the cache size (in
unique bytes) on every trace.  Paper finding: hit probability grows with
the window and flattens around 4x — the default the paper adopts.
"""

from benchmarks.common import (
    TRACE_NAMES,
    cache_bytes,
    emit,
    format_rows,
    paper_cache_sizes,
    trace,
)
from repro.core import LhrCache

WINDOW_MULTIPLES = (1.0, 2.0, 4.0, 8.0)


def build_figure5():
    rows = []
    for name in TRACE_NAMES:
        t = trace(name)
        capacity = cache_bytes(name, paper_cache_sizes(name)[1])
        row = {"trace": name}
        for multiple in WINDOW_MULTIPLES:
            cache = LhrCache(capacity, window_multiple=multiple, seed=0)
            cache.process(t)
            row[f"hit@{multiple:g}x"] = round(cache.object_hit_ratio, 3)
        rows.append(row)
    return rows


def test_figure5(benchmark):
    rows = benchmark.pedantic(build_figure5, rounds=1, iterations=1)
    emit("figure5", format_rows(rows))
    for row in rows:
        values = [row[f"hit@{m:g}x"] for m in WINDOW_MULTIPLES]
        # The 4x default should be within noise of the sweep's best
        # (Figure 5: diminishing returns beyond ~4x).
        assert row["hit@4x"] >= max(values) - 0.05, row
        # And a 1x window should not dominate everything (too little
        # history to train on).
        assert row["hit@1x"] <= max(values) + 1e-9, row
