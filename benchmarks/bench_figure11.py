"""Figure 11 — responsiveness to workload changes ("Syn One"/"Syn Two").

Markov-modulated Zipf workloads (Section 7.6): Syn One alternates a Zipf
ranking with its reversal; Syn Two cycles the skew through 0.7/0.9/1.1.
Paper finding: LHR beats every SOTA on both hit probability and traffic;
the best SOTA differs between the two workloads.
"""

from benchmarks.common import SCALE, compare, emit, format_rows, policy_kwargs
from repro.policies import SOTA_POLICIES
from repro.traces import syn_one_trace, syn_two_trace

GB = 1 << 30

#: Paper scale: 1M requests, N=1000 contents, r=200k requests per state.
NUM_REQUESTS = max(int(1_000_000 * SCALE), 5_000)
NUM_CONTENTS = 1_000
REQUESTS_PER_STATE = max(NUM_REQUESTS // 5, 1_000)


def build_figure11():
    rows = []
    workloads = {
        "syn-one": syn_one_trace(
            num_requests=NUM_REQUESTS,
            num_contents=NUM_CONTENTS,
            requests_per_state=REQUESTS_PER_STATE,
            seed=3,
        ),
        "syn-two": syn_two_trace(
            num_requests=NUM_REQUESTS,
            num_contents=NUM_CONTENTS,
            requests_per_state=REQUESTS_PER_STATE,
            seed=3,
        ),
    }
    for workload_name, t in workloads.items():
        capacity = int(0.1 * t.unique_bytes())
        results = compare(
            t, ["lhr", *SOTA_POLICIES], [capacity], policy_kwargs=policy_kwargs()
        )
        for result in results:
            rows.append(
                {
                    "workload": workload_name,
                    "policy": result.policy,
                    "object_hit": round(result.object_hit_ratio, 3),
                    "wan_traffic_gb": round(result.wan_traffic_bytes / GB, 2),
                }
            )
    return rows


def test_figure11(benchmark):
    rows = benchmark.pedantic(build_figure11, rounds=1, iterations=1)
    emit("figure11", format_rows(rows))
    for workload in ("syn-one", "syn-two"):
        cell = [r for r in rows if r["workload"] == workload]
        lhr = next(r for r in cell if r["policy"] == "lhr")
        best_sota = max(
            (r for r in cell if r["policy"] != "lhr"),
            key=lambda r: r["object_hit"],
        )
        # LHR adapts: at or above the best SOTA on the shifting workload.
        assert lhr["object_hit"] >= best_sota["object_hit"] - 0.01, workload
        # And it achieves that hit rate with less WAN traffic than the
        # SOTA that comes closest to it on hit probability.
        assert lhr["wan_traffic_gb"] <= best_sota["wan_traffic_gb"] * 1.05, workload
