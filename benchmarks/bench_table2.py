"""Table 2 — resource usage of the LHR prototype vs unmodified ATS.

Max (throughput-bound) and normal (production-speed) experiments per
trace: throughput, peak CPU, peak memory, latency percentiles, WAN
traffic and content hit probability.
"""

from benchmarks.common import SCALE, TRACE_NAMES, emit, format_rows, trace
from repro.core import LhrCache
from repro.proto import AtsServer, make_ats_baseline, run_prototype
from repro.traces.production import PRODUCTION_SPECS


def build_table2():
    rows = []
    for name in TRACE_NAMES:
        t = trace(name)
        spec = PRODUCTION_SPECS[name]
        capacity = spec.scaled_cache_bytes(spec.prototype_cache_gb, SCALE)
        for system, server in (
            ("lhr", AtsServer(LhrCache(capacity, seed=0))),
            ("ats", make_ats_baseline(capacity)),
        ):
            report = run_prototype(server, t, system)
            rows.append(report.as_row())
    return rows


def test_table2(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    emit("table2", format_rows(rows))
    by_key = {(row["system"], row["trace"]): row for row in rows}
    for name in TRACE_NAMES:
        lhr = by_key[("lhr", name)]
        ats = by_key[("ats", name)]
        # Table 2 shapes: LHR wins content hits, throughput and mean
        # latency; costs clearly more CPU and slightly more memory.
        assert lhr["content_hit_percent"] > ats["content_hit_percent"], name
        assert lhr["throughput_gbps"] >= ats["throughput_gbps"] * 0.98, name
        assert lhr["peak_cpu_percent"] > 2 * ats["peak_cpu_percent"], name
        assert lhr["peak_mem_gb"] >= ats["peak_mem_gb"], name
        assert lhr["mean_latency_ms"] <= ats["mean_latency_ms"] * 1.05, name
