"""Figure 9 — peak memory and running time of the learning-based
algorithms (LHR, LRB, Hawkeye).

Paper finding: LHR needs less memory and much less running time than
LRB (which re-predicts all cached objects per eviction) but more memory
than Hawkeye's compact counter tables.
"""

from benchmarks.common import (
    LRB_KWARGS,
    TRACE_NAMES,
    cache_bytes,
    emit,
    format_rows,
    paper_cache_sizes,
    trace,
)
from repro.sim import build_policy, simulate

MB = 1 << 20


def build_figure9():
    rows = []
    for name in TRACE_NAMES:
        t = trace(name)
        capacity = cache_bytes(name, paper_cache_sizes(name)[1])
        for policy_name in ("lhr", "lrb", "hawkeye"):
            kwargs = dict(LRB_KWARGS) if policy_name == "lrb" else {}
            result = simulate(build_policy(policy_name, capacity, **kwargs), t)
            rows.append(
                {
                    "trace": name,
                    "policy": policy_name,
                    "peak_memory_mb": round(result.peak_metadata_bytes / MB, 2),
                    "running_time_s": round(result.runtime_seconds, 2),
                    "object_hit": round(result.object_hit_ratio, 3),
                }
            )
    return rows


def test_figure9(benchmark):
    rows = benchmark.pedantic(build_figure9, rounds=1, iterations=1)
    emit("figure9", format_rows(rows))
    for name in TRACE_NAMES:
        cell = {r["policy"]: r for r in rows if r["trace"] == name}
        # LHR runs substantially faster than LRB.
        assert cell["lhr"]["running_time_s"] < cell["lrb"]["running_time_s"], name
        # Memory ordering: Hawkeye < LHR (counters vs feature store).
        assert (
            cell["hawkeye"]["peak_memory_mb"] < cell["lhr"]["peak_memory_mb"]
        ), name
        # Everything stays far below the cache size itself.
        capacity_mb = cache_bytes(name, paper_cache_sizes(name)[1]) / MB
        for row in cell.values():
            assert row["peak_memory_mb"] < 0.5 * capacity_mb, row
