"""Normalized benchmark telemetry: one ``BENCH_<name>.json`` per run.

Every benchmark already prints a human-readable table; this module adds
a machine-readable sidecar so runs can seed a regression trajectory —
CI archives the files as artifacts and later sessions diff them.

The schema (``repro-bench/2``) is deliberately small and flat:

* ``name`` / ``scale`` / ``seed`` / ``jobs`` — the run's identity.
* ``run_id`` / ``git_rev`` / ``config_digest`` — provenance (new in v2),
  linking a payload to the run ledger and the source revision.
* ``wall_seconds`` / ``requests`` / ``throughput_rps`` — how fast the
  simulated request stream replayed, summed over the run's sweeps.
* ``peak_rss_bytes`` — the process peak resident set (``getrusage``).
* ``hit_ratios`` — ``"policy@capacity" -> object hit ratio`` for every
  sweep cell the run executed.
* ``obs_overhead_percent`` — the observability-disabled-path cost when
  the run measured it (``bench_obs_overhead``), else ``None``.
* ``extra`` — free-form benchmark-specific numbers.

Emission is opt-in via ``REPRO_TELEMETRY=1`` (the collector is always
cheap enough to leave wired in); files land in ``benchmarks/results/``
or ``$REPRO_TELEMETRY_DIR``.  When ``$REPRO_LEDGER_DIR`` is also set,
each emitted payload is additionally recorded into the run ledger
(``command="bench"``) so ``repro bench-compare --ledger`` can trend new
runs against the rolling history.

The ``repro-bench/2`` schema contract itself lives in
:mod:`repro.obs.baseline` (the regression sentinel that consumes these
files); ``SCHEMA`` and :func:`validate_telemetry` are re-exported here
so the emission side and the comparison side can never disagree.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.baseline import SCHEMA, validate_telemetry
from repro.obs.runs import RunRecord, config_digest, current_git_rev

__all__ = [
    "SCHEMA",
    "BenchCollector",
    "build_payload",
    "emit_telemetry",
    "peak_rss_bytes",
    "telemetry_dir",
    "telemetry_enabled",
    "validate_telemetry",
]


def telemetry_enabled() -> bool:
    """Whether ``BENCH_*.json`` files should be written this run."""
    return os.environ.get("REPRO_TELEMETRY", "0").lower() in ("1", "true", "yes")


def telemetry_dir() -> Path:
    override = os.environ.get("REPRO_TELEMETRY_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "results"


def peak_rss_bytes() -> int:
    """Process peak resident set size in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize to
    bytes so the telemetry field is platform-independent.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


class BenchCollector:
    """Accumulates sweep outcomes between ``emit`` calls.

    ``benchmarks/common.py`` feeds one :meth:`record_sweep` per
    ``run_comparison`` and drains the collector into a telemetry payload
    when the benchmark emits its result block, so every existing
    benchmark gets telemetry without touching its body.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.wall_seconds = 0.0
        self.requests = 0
        self.hit_ratios: dict[str, float] = {}

    def record_sweep(self, results, seconds: float) -> None:
        self.wall_seconds += seconds
        for result in results:
            self.requests += result.requests
            self.hit_ratios[f"{result.policy}@{result.capacity}"] = round(
                result.object_hit_ratio, 6
            )

    def drain(self) -> dict:
        """Snapshot and reset, so sequential benchmarks don't mix."""
        snapshot = {
            "wall_seconds": round(self.wall_seconds, 4),
            "requests": self.requests,
            "throughput_rps": round(
                self.requests / self.wall_seconds if self.wall_seconds else 0.0, 1
            ),
            "hit_ratios": dict(self.hit_ratios),
        }
        self.reset()
        return snapshot


def build_payload(
    name: str,
    *,
    scale: float,
    seed: int,
    jobs: int,
    wall_seconds: float,
    requests: int = 0,
    throughput_rps: float | None = None,
    hit_ratios: dict[str, float] | None = None,
    obs_overhead_percent: float | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble a schema-valid telemetry payload."""
    if throughput_rps is None:
        throughput_rps = round(requests / wall_seconds, 1) if wall_seconds else 0.0
    digest = config_digest(
        {"name": name, "scale": scale, "seed": seed, "jobs": jobs}
    )
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%S.%fZ")
    return {
        "schema": SCHEMA,
        "name": name,
        "scale": scale,
        "seed": seed,
        "jobs": jobs,
        # v2 provenance: a ledger-style run id, the source revision, and
        # the digest of the run's identity knobs.
        "run_id": f"{stamp}-{digest[:8]}",
        "git_rev": current_git_rev(),
        "config_digest": digest,
        "wall_seconds": round(wall_seconds, 4),
        "requests": requests,
        "throughput_rps": throughput_rps,
        "peak_rss_bytes": peak_rss_bytes(),
        "hit_ratios": dict(hit_ratios or {}),
        "obs_overhead_percent": obs_overhead_percent,
        "extra": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "unix_time": int(time.time()),
            **(extra or {}),
        },
    }


def emit_telemetry(payload: dict, out_dir: Path | None = None) -> Path | None:
    """Validate and write ``payload`` as ``BENCH_<name>.json``.

    Returns the written path, or ``None`` when telemetry is disabled.
    When ``$REPRO_LEDGER_DIR`` is set the payload is also recorded into
    the run ledger, growing the rolling history that
    ``repro bench-compare --ledger`` trends against.
    """
    if not telemetry_enabled():
        return None
    validate_telemetry(payload)
    directory = out_dir if out_dir is not None else telemetry_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{payload['name']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _record_in_ledger(payload)
    return path


def _record_in_ledger(payload: dict) -> None:
    """Append the payload to the run ledger named by ``$REPRO_LEDGER_DIR``.

    Best-effort: a ledger failure must never fail a benchmark whose
    telemetry file is already on disk.
    """
    root = os.environ.get("REPRO_LEDGER_DIR")
    if not root:
        return
    from repro.obs.runs import RunLedger

    try:
        RunLedger(root).record(
            RunRecord(
                command="bench",
                name=payload["name"],
                run_id=payload.get("run_id", ""),
                git_rev=payload.get("git_rev", ""),
                config_digest=payload.get("config_digest", ""),
                config={
                    "name": payload["name"],
                    "scale": payload.get("scale"),
                    "seed": payload.get("seed"),
                    "jobs": payload.get("jobs"),
                },
                metrics=dict(payload),
            )
        )
    except Exception as exc:  # noqa: BLE001 — bookkeeping only
        print(f"warning: bench ledger write failed: {exc}", file=sys.stderr)
