"""Shared benchmark-harness configuration.

Every benchmark regenerates one table or figure of the paper.  Scale is
controlled by the ``REPRO_SCALE`` environment variable — the fraction of
the paper's trace size to replay (default 0.01 = ~10k requests per trace,
fast enough for CI; 1.0 replays paper-scale ~1M-request traces).

Results print to stdout and are archived under ``benchmarks/results/``.
``EXPERIMENTS.md`` records the paper-reported values next to ours.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache
from pathlib import Path

from benchmarks.telemetry import BenchCollector, build_payload, emit_telemetry
from repro.sim import run_comparison
from repro.traces import Trace, generate_production_trace
from repro.traces.production import PRODUCTION_SPECS

#: Fraction of paper-scale replayed by the benchmarks.
SCALE = float(os.environ.get("REPRO_SCALE", "0.01"))

#: Deterministic seed for every generated workload.
SEED = int(os.environ.get("REPRO_SEED", "1"))

#: Worker processes for every sweep benchmark (0/1 = serial).  Parallel
#: sweeps are bit-identical to serial ones, so this only changes speed.
JOBS = int(os.environ.get("REPRO_JOBS", "0"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Committed regression baselines (`repro bench-compare` reference files).
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: The trace names of Table 1, in paper order.
TRACE_NAMES = ("cdn-a", "cdn-b", "cdn-c", "wiki")

#: LRB is the slowest baseline; trimmed training settings keep benchmark
#: wall time sane at small scale without changing its structure.
LRB_KWARGS = {"training_batch": 2048, "max_training_data": 8192}
LFO_KWARGS = {"window_requests": 3000}


@lru_cache(maxsize=None)
def trace(name: str, scale: float = SCALE, seed: int = SEED) -> Trace:
    """Cached stand-in trace for ``name`` at the configured scale."""
    return generate_production_trace(name, scale=scale, seed=seed)


def cache_bytes(name: str, cache_gb: float, scale: float = SCALE) -> int:
    """Paper cache size translated to the replay scale."""
    return PRODUCTION_SPECS[name].scaled_cache_bytes(cache_gb, scale)


def paper_cache_sizes(name: str) -> tuple[int, ...]:
    """The two cache sizes (GB) the paper reports for this trace."""
    return PRODUCTION_SPECS[name].cache_sizes_gb


def policy_kwargs() -> dict[str, dict]:
    return {"lrb": dict(LRB_KWARGS), "lfo": dict(LFO_KWARGS)}


#: Collects sweep timings/hit ratios between ``emit`` calls so every
#: benchmark gets a ``BENCH_<name>.json`` sidecar for free.
COLLECTOR = BenchCollector()


def compare(t: Trace, policy_names, capacities, **kwargs):
    """``run_comparison`` honouring the ``REPRO_JOBS`` fan-out setting."""
    kwargs.setdefault("parallel", JOBS)
    start = time.perf_counter()
    results = run_comparison(t, policy_names, capacities, **kwargs)
    COLLECTOR.record_sweep(results, time.perf_counter() - start)
    return results


def emit(
    experiment: str,
    text: str,
    *,
    obs_overhead_percent: float | None = None,
    extra: dict | None = None,
) -> None:
    """Print a result block and archive it under benchmarks/results/.

    With ``REPRO_TELEMETRY=1`` this also drains the sweep collector into
    a normalized ``BENCH_<experiment>.json`` next to the text archive,
    and — when a committed baseline exists under ``benchmarks/baselines/``
    — prints a warn-only regression check against it (the authoritative
    gate is ``repro bench-compare`` in CI).
    """
    banner = f"===== {experiment} (scale={SCALE}) ====="
    print(f"\n{banner}\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{experiment}.txt"
    out.write_text(f"{banner}\n{text}\n")
    sweeps = COLLECTOR.drain()
    payload = build_payload(
        experiment,
        scale=SCALE,
        seed=SEED,
        jobs=JOBS,
        obs_overhead_percent=obs_overhead_percent,
        extra=extra,
        **sweeps,
    )
    written = emit_telemetry(payload)
    if written is not None:
        print(f"telemetry -> {written}")
        _check_against_baseline(payload)
        _check_against_history(payload)


def _check_against_baseline(payload: dict) -> None:
    """Warn-only comparison of fresh telemetry vs the committed baseline."""
    from repro.obs.baseline import compare_payloads, load_telemetry

    baseline_path = BASELINE_DIR / "BENCH_baseline.json"
    if not baseline_path.exists():
        return
    try:
        baseline = load_telemetry(baseline_path)
        if baseline["name"] != payload["name"]:
            return
        verdict = compare_payloads(baseline, payload)
    except ValueError as exc:
        print(f"baseline check skipped: {exc}")
        return
    print(verdict.render_text())
    if verdict.regressed:
        print("(warn-only: the CI gate is `repro bench-compare`)")


def _check_against_history(payload: dict) -> None:
    """Warn-only trend check of fresh telemetry vs the run-ledger history.

    Compares against the rolling median of the last three recorded runs
    of the same benchmark (excluding the payload just recorded) when
    ``$REPRO_LEDGER_DIR`` is set; the enforcing equivalent is
    ``repro bench-compare --ledger`` in CI.
    """
    root = os.environ.get("REPRO_LEDGER_DIR")
    if not root:
        return
    from repro.obs.baseline import compare_with_history
    from repro.obs.runs import RunLedger

    try:
        history = RunLedger(root).bench_history(
            payload["name"], limit=3, exclude=payload.get("run_id") or None
        )
        if not history:
            return
        verdict = compare_with_history(history, payload)
    except (OSError, ValueError) as exc:
        print(f"history check skipped: {exc}")
        return
    print(verdict.render_text())
    if verdict.regressed:
        print("(warn-only: the CI gate is `repro bench-compare --ledger`)")


def format_rows(rows: list[dict]) -> str:
    """Fixed-width table from a list of dicts (shared column set)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    lines = ["  ".join(str(col).ljust(widths[col]) for col in columns)]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)
