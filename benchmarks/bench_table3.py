"""Table 3 — estimated average latency (ms) and throughput (Gbps) for
LHR, Hawkeye, LRB and LRU under the idealized network model.

Paper finding: LHR has the lowest latency and the highest throughput on
every trace (its hit-ratio advantage converts directly under the model).
"""

from benchmarks.common import (
    LRB_KWARGS,
    SCALE,
    TRACE_NAMES,
    emit,
    format_rows,
    trace,
)
from repro.sim import build_policy, measure_latency, simulate
from repro.traces.production import PRODUCTION_SPECS

POLICIES = ("lhr", "hawkeye", "lrb", "lru")


def build_table3():
    rows = []
    for name in TRACE_NAMES:
        t = trace(name)
        spec = PRODUCTION_SPECS[name]
        capacity = spec.scaled_cache_bytes(spec.prototype_cache_gb, SCALE)
        for policy_name in POLICIES:
            kwargs = dict(LRB_KWARGS) if policy_name == "lrb" else {}
            # Measure the policy's own compute time first, then charge it
            # per request in the latency model (Section 7.3: "we also
            # take the running time of the ML model into account").
            probe = simulate(build_policy(policy_name, capacity, **kwargs), t)
            overhead = probe.runtime_seconds / max(len(t), 1)
            report = measure_latency(
                build_policy(policy_name, capacity, **kwargs),
                t,
                compute_overhead_s=overhead,
            )
            row = report.as_row()
            row["trace"] = name
            rows.append(row)
    return rows


def test_table3(benchmark):
    rows = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    emit("table3", format_rows(rows))
    for name in TRACE_NAMES:
        cell = {r["policy"]: r for r in rows if r["trace"] == name}
        others = [cell[p] for p in POLICIES if p != "lhr"]
        slack = 1.02 if name == "cdn-c" else 1.005
        # LHR: lowest mean latency (Table 3); latency follows the object
        # hit probability under the first-chunk model.
        assert cell["lhr"]["mean_latency_ms"] <= min(
            r["mean_latency_ms"] for r in others
        ) * slack, name
        # Throughput is byte-hit driven; our stand-in traces give LHR a
        # smaller byte-hit edge than the paper's traces, so we require
        # LHR to stay within 15% of the best rather than strictly win
        # (see EXPERIMENTS.md, "WAN traffic / byte hit ratio").
        assert cell["lhr"]["throughput_gbps"] >= max(
            r["throughput_gbps"] for r in others
        ) * 0.85, name
