"""Figure 8 — hit probability and WAN traffic: LHR vs the seven SOTAs
across two cache sizes per trace.

Paper finding: LHR consistently tops the SOTA pool on hit probability
(CDN-C marginal) while no single SOTA wins everywhere.
"""

from benchmarks.common import (
    TRACE_NAMES,
    cache_bytes,
    compare,
    emit,
    format_rows,
    paper_cache_sizes,
    policy_kwargs,
    trace,
)
from repro.policies import SOTA_POLICIES

GB = 1 << 30


def build_figure8():
    rows = []
    for name in TRACE_NAMES:
        t = trace(name)
        for cache_gb in paper_cache_sizes(name):
            capacity = cache_bytes(name, cache_gb)
            results = compare(
                t,
                ["lhr", *SOTA_POLICIES],
                [capacity],
                policy_kwargs=policy_kwargs(),
            )
            for result in results:
                rows.append(
                    {
                        "trace": name,
                        "cache_gb": cache_gb,
                        "policy": result.policy,
                        "object_hit": round(result.object_hit_ratio, 3),
                        "byte_hit": round(result.byte_hit_ratio, 3),
                        "wan_traffic_gb": round(result.wan_traffic_bytes / GB, 2),
                    }
                )
    return rows


def test_figure8(benchmark):
    rows = benchmark.pedantic(build_figure8, rounds=1, iterations=1)
    emit("figure8", format_rows(rows))
    scenarios = {(row["trace"], row["cache_gb"]) for row in rows}
    lhr_wins = 0
    for scenario in scenarios:
        cell = [r for r in rows if (r["trace"], r["cache_gb"]) == scenario]
        lhr = next(r for r in cell if r["policy"] == "lhr")
        best_sota = max(
            (r for r in cell if r["policy"] != "lhr"),
            key=lambda r: r["object_hit"],
        )
        # At REPRO_SCALE >= 0.03 LHR wins every scenario strictly; at the
        # fast default scale (0.01) the learner sees ~10k requests and
        # AdaptSize can edge it within noise on one scenario, hence the
        # small slack (CDN-C is marginal in the paper itself).
        slack = 0.025 if scenario[0] in ("cdn-c", "wiki") else 0.005
        assert lhr["object_hit"] >= best_sota["object_hit"] - slack, scenario
        lhr_wins += lhr["object_hit"] >= best_sota["object_hit"]
    # LHR strictly wins most scenarios (the paper: all; CDN-C marginal).
    assert lhr_wins >= len(scenarios) - 2
    # No single SOTA dominates: the per-scenario best-SOTA identity varies.
    best_names = set()
    for scenario in scenarios:
        cell = [r for r in rows if (r["trace"], r["cache_gb"]) == scenario]
        best_names.add(
            max(
                (r for r in cell if r["policy"] != "lhr"),
                key=lambda r: r["object_hit"],
            )["policy"]
        )
    assert len(best_names) >= 2
