"""Figure 10 — ablation: LHR vs D-LHR (fixed threshold) vs N-LHR (no
detection, retrain every window).

Paper findings: (a) auto-tuning matters most on CDN-C; (b) detection
cuts training time 15-40% with no memory cost; (c) LHR >= N-LHR on hit
probability with lower training time on most traces.
"""

from benchmarks.common import (
    TRACE_NAMES,
    cache_bytes,
    emit,
    format_rows,
    paper_cache_sizes,
    trace,
)
from repro.sim import build_policy

MB = 1 << 20


def build_figure10():
    rows = []
    for name in TRACE_NAMES:
        t = trace(name)
        for cache_gb in paper_cache_sizes(name):
            capacity = cache_bytes(name, cache_gb)
            for variant in ("lhr", "d-lhr", "n-lhr"):
                policy = build_policy(variant, capacity, seed=0)
                policy.process(t)
                rows.append(
                    {
                        "trace": name,
                        "cache_gb": cache_gb,
                        "variant": variant,
                        "object_hit": round(policy.object_hit_ratio, 3),
                        "trainings": policy.trainings,
                        "training_time_s": round(policy.training_seconds, 3),
                        "peak_memory_mb": round(policy.metadata_bytes() / MB, 2),
                        "final_delta": round(policy.delta, 2),
                    }
                )
    return rows


def test_figure10(benchmark):
    rows = benchmark.pedantic(build_figure10, rounds=1, iterations=1)
    emit("figure10", format_rows(rows))
    for name in TRACE_NAMES:
        for cache_gb in paper_cache_sizes(name):
            cell = {
                r["variant"]: r
                for r in rows
                if r["trace"] == name and r["cache_gb"] == cache_gb
            }
            # (b) detection reduces training count vs retrain-always.
            assert cell["d-lhr"]["trainings"] <= cell["n-lhr"]["trainings"]
            # (a)+(c): the full LHR is at worst marginally behind its
            # ablations and generally ahead.
            assert (
                cell["lhr"]["object_hit"]
                >= max(cell["d-lhr"]["object_hit"], cell["n-lhr"]["object_hit"])
                - 0.03
            ), (name, cache_gb)
    # Across all scenarios, detection saves training time in aggregate.
    d_time = sum(r["training_time_s"] for r in rows if r["variant"] == "d-lhr")
    n_time = sum(r["training_time_s"] for r in rows if r["variant"] == "n-lhr")
    assert d_time <= n_time
