"""Design-choice ablations beyond the paper's own Figure 10.

1. Eviction rule: the paper's ``p/(s*IRT1)`` vs the "straightforward"
   smallest-p rule (Section 5.2.5 motivates the former) and the
   recency-only variant ``p/IRT1``.
2. HRO approximation quality: the Poisson-window HRO vs the exact
   hazard bound on a synthetic IRM trace with known rates.
3. Window currency: sizing windows by unique bytes (the paper's choice)
   vs an equal-expected-length request-count window.
4. Hazard estimator: the paper's Poisson window approximation vs the
   Weibull and hyperexponential estimators it leaves as future work.
5. Training loss: squared error (the paper found it best, Section 5.2.4)
   vs logistic loss for the admission model.
6. Threshold objective: tuning delta for object hits (the paper) vs for
   byte hits — the extension knob addressing the WAN-traffic divergence
   documented in EXPERIMENTS.md.
"""

import numpy as np

from benchmarks.common import cache_bytes, emit, format_rows, paper_cache_sizes, trace
from repro.bounds import exact_hazard_bound
from repro.core import LhrCache, hro_bound
from repro.traces import irm_trace
from repro.util.sampling import zipf_weights


def ablation_eviction_rule():
    rows = []
    for name in ("cdn-a", "cdn-b"):
        t = trace(name)
        capacity = cache_bytes(name, paper_cache_sizes(name)[1])
        row = {"trace": name}
        for rule in ("lhr", "p-only", "p-recency"):
            cache = LhrCache(capacity, eviction_rule=rule, seed=0)
            cache.process(t)
            row[f"hit[{rule}]"] = round(cache.object_hit_ratio, 3)
            row[f"bytehit[{rule}]"] = round(cache.byte_hit_ratio, 3)
        rows.append(row)
    return rows


def ablation_hro_vs_exact():
    num_contents = 400
    alpha = 0.9
    t = irm_trace(
        20_000, num_contents, alpha=alpha, mean_size=1 << 16, size_sigma=1.0, seed=13
    )
    capacity = int(0.1 * t.unique_bytes())
    weights = zipf_weights(num_contents, alpha)
    total_rate = len(t) / t.duration
    rates = {i: float(w) * total_rate for i, w in enumerate(weights)}
    exact = exact_hazard_bound(t.requests, rates, capacity)
    approx = hro_bound(t, capacity, min_window_requests=512)
    return [
        {
            "bound": "hr-exact (known rates)",
            "hit_ratio": round(exact.hit_ratio, 3),
        },
        {
            "bound": "hro (Poisson window approx)",
            "hit_ratio": round(approx.hit_ratio, 3),
        },
    ]


def ablation_window_currency():
    rows = []
    for name in ("cdn-a", "wiki"):
        t = trace(name)
        capacity = cache_bytes(name, paper_cache_sizes(name)[1])
        by_bytes = LhrCache(capacity, window_multiple=4.0, seed=0)
        by_bytes.process(t)
        # Request-count window of equal expected length: force closes at
        # the mean per-window request count of the byte-sized run.
        mean_requests = max(
            int(np.mean([w.num_requests for w in by_bytes.hro.windows] or [1000])), 256
        )
        by_requests = LhrCache(
            capacity,
            window_multiple=1e9,  # unique-byte condition never binds
            min_window_requests=mean_requests,
            seed=0,
        )
        by_requests.process(t)
        rows.append(
            {
                "trace": name,
                "hit[unique-bytes window]": round(by_bytes.object_hit_ratio, 3),
                "hit[request-count window]": round(by_requests.object_hit_ratio, 3),
                "windows_bytes": by_bytes.windows_processed,
                "windows_requests": by_requests.windows_processed,
            }
        )
    return rows


def ablation_hazard_estimators():
    rows = []
    for name in ("cdn-a", "cdn-b"):
        t = trace(name)
        capacity = cache_bytes(name, paper_cache_sizes(name)[1])
        row = {"trace": name}
        for model in ("poisson", "weibull", "hyperexponential"):
            bound = hro_bound(
                t, capacity, min_window_requests=512, hazard_model=model
            )
            row[f"hro[{model}]"] = round(bound.hit_ratio, 3)
        rows.append(row)
    return rows


def ablation_training_loss():
    rows = []
    for name in ("cdn-a", "cdn-b"):
        t = trace(name)
        capacity = cache_bytes(name, paper_cache_sizes(name)[1])
        row = {"trace": name}
        for loss in ("squared", "logistic"):
            cache = LhrCache(
                capacity,
                seed=0,
                gbm_params={
                    "n_estimators": 16,
                    "max_depth": 4,
                    "learning_rate": 0.3,
                    "subsample": 0.8,
                    "seed": 0,
                    "loss": loss,
                },
            )
            cache.process(t)
            row[f"hit[{loss}]"] = round(cache.object_hit_ratio, 3)
        rows.append(row)
    return rows


def ablation_threshold_objective():
    rows = []
    for name in ("cdn-a", "cdn-b"):
        t = trace(name)
        capacity = cache_bytes(name, paper_cache_sizes(name)[1])
        row = {"trace": name}
        for objective, rule in (("object", "lhr"), ("byte", "p-recency")):
            cache = LhrCache(
                capacity,
                threshold_objective=objective,
                eviction_rule=rule,
                seed=0,
            )
            cache.process(t)
            row[f"hit[{objective}]"] = round(cache.object_hit_ratio, 3)
            row[f"bytehit[{objective}]"] = round(cache.byte_hit_ratio, 3)
        rows.append(row)
    return rows


def build_ablations():
    return {
        "eviction_rule": ablation_eviction_rule(),
        "hro_vs_exact": ablation_hro_vs_exact(),
        "window_currency": ablation_window_currency(),
        "hazard_estimators": ablation_hazard_estimators(),
        "training_loss": ablation_training_loss(),
        "threshold_objective": ablation_threshold_objective(),
    }


def test_ablations(benchmark):
    sections = benchmark.pedantic(build_ablations, rounds=1, iterations=1)
    text = "\n\n".join(
        f"{title}:\n{format_rows(rows)}" for title, rows in sections.items()
    )
    emit("ablations", text)
    # The paper's eviction rule beats smallest-p on object hit ratio.
    for row in sections["eviction_rule"]:
        assert row["hit[lhr]"] >= row["hit[p-only]"], row
        assert row["hit[lhr]"] >= row["hit[p-recency]"], row
    # The Poisson approximation stays close to the exact hazard bound on
    # a stationary trace (within a few points, never collapsing).
    exact, approx = (r["hit_ratio"] for r in sections["hro_vs_exact"])
    assert abs(exact - approx) < 0.12
    # Unique-byte windows (the paper's choice) are no worse than
    # request-count windows of comparable length.
    for row in sections["window_currency"]:
        assert (
            row["hit[unique-bytes window]"]
            >= row["hit[request-count window]"] - 0.03
        ), row
    # Richer hazard estimators never loosen the bound by much, and tend
    # to tighten it (lower = tighter upper bound).
    for row in sections["hazard_estimators"]:
        assert row["hro[weibull]"] <= row["hro[poisson]"] + 0.02, row
        assert row["hro[hyperexponential]"] <= row["hro[poisson]"] + 0.02, row
    # Squared loss (the paper's pick) is competitive with logistic.
    for row in sections["training_loss"]:
        assert row["hit[squared]"] >= row["hit[logistic]"] - 0.03, row
    # The byte objective (with the size-free eviction rule) trades object
    # hits for byte hits, as intended.
    for row in sections["threshold_objective"]:
        assert row["bytehit[byte]"] >= row["bytehit[object]"] - 0.01, row
        assert row["hit[object]"] >= row["hit[byte]"] - 0.01, row
