"""Engineering benchmark: cost of the observability layer.

Two claims to pin down:

* the **disabled** path (the default ``NULL_OBS`` handle) is effectively
  free — every instrumentation site reduces to one attribute check, and
  that check costs <2% of what ``simulate()`` already spends per request
  (asserted; the check is measured directly, so the bound holds even on
  noisy shared runners);
* the **enabled** path (in-memory recorder + registry) stays cheap
  enough to leave on for diagnostics (reported, not asserted — window
  and training events dominate, not per-request work).

The decision tracer (``repro.obs.trace``) adds nothing to the disabled
path by construction — ``attach_tracer`` swaps the ``request`` dispatch
instead of guarding inside it — and the test asserts the untraced
policy carries no dispatch shadow.  The full-record tracing cost is
reported as ``traced_overhead_percent`` (large relative to a bare LRU
replay, which is the point of sampling and ring buffers).

Set ``REPRO_ASSERT_OBS_OVERHEAD=0`` to waive the assertion (same
convention as ``REPRO_ASSERT_SPEEDUP``).
"""

import os
import time

import pytest

from benchmarks.common import JOBS, SCALE, SEED, cache_bytes, trace
from benchmarks.telemetry import build_payload, emit_telemetry
from repro.obs import (
    NULL_OBS,
    DecisionTracer,
    LearnerTelemetry,
    MemoryRecorder,
    Observation,
    RunLedger,
    SpanRecorder,
    record_from_results,
)
from repro.sim import build_policy, simulate

#: Repeats per variant; medians tame scheduler noise on shared runners.
ROUNDS = 5

#: Iterations for timing the bare guard expression.
GUARD_ITERS = 200_000


def _median(samples):
    return sorted(samples)[len(samples) // 2]


def _replay_seconds(workload, obs_factory, rounds=ROUNDS, tracer_factory=None):
    capacity = cache_bytes("cdn-a", 512)
    samples = []
    last_policy = None
    for _ in range(rounds):
        policy = build_policy("lru", capacity)
        tracer = tracer_factory() if tracer_factory is not None else None
        start = time.perf_counter()
        simulate(policy, workload, obs=obs_factory(), tracer=tracer)
        samples.append(time.perf_counter() - start)
        last_policy = policy
    return _median(samples), last_policy


def _guard_seconds_per_check():
    """Direct cost of the disabled-path guard (``obs.enabled``), net of
    the timing loop's own overhead."""
    obs = NULL_OBS
    sink = 0
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(GUARD_ITERS):
            pass
        empty = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(GUARD_ITERS):
            if obs.enabled:
                sink += 1
        guarded = time.perf_counter() - start
        samples.append(max(guarded - empty, 0.0) / GUARD_ITERS)
    assert sink == 0
    return _median(samples)


@pytest.fixture(scope="module")
def workload():
    return trace("cdn-a")


def test_noop_recorder_overhead_under_two_percent(workload, benchmark):
    """The acceptance bar: the no-op recorder costs <2% of simulate()."""
    # Warmup replay touches every lazy import and allocator path.
    _replay_seconds(workload, lambda: NULL_OBS, rounds=1)

    disabled, policy = _replay_seconds(workload, lambda: NULL_OBS)
    enabled, _ = _replay_seconds(
        workload, lambda: Observation(recorder=MemoryRecorder())
    )
    traced, _ = _replay_seconds(
        workload, lambda: NULL_OBS, tracer_factory=DecisionTracer
    )
    per_request = disabled / len(workload)
    per_check = _guard_seconds_per_check()
    # When disabled, the replay loop itself carries no guards; the only
    # per-event check sits in the admission path (the eviction-burst
    # guard), evaluated once per admission.  The decision tracer adds
    # NO disabled-path check: attach_tracer swaps the ``request``
    # dispatch through the instance dict instead of guarding inside it,
    # and victim capture shadows ``_remove`` only while a traced
    # admission is in flight.  Assert that construction still holds —
    # an untraced policy must run the seed's exact instruction stream.
    assert "request" not in policy.__dict__, (
        "untraced policy carries a request() shadow; the tracer has "
        "leaked cost onto the disabled path"
    )
    assert "_remove" not in policy.__dict__, (
        "untraced policy carries a _remove() shadow; victim capture has "
        "leaked cost onto the disabled path"
    )
    checks = policy.admissions + 1  # +1 for the engine's one-time setup
    overhead_ratio = checks * per_check / disabled

    benchmark.pedantic(
        lambda: simulate(
            build_policy("lru", cache_bytes("cdn-a", 512)), workload
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        requests=len(workload),
        admissions=policy.admissions,
        evictions=policy.evictions,
        disabled_seconds=round(disabled, 4),
        enabled_seconds=round(enabled, 4),
        enabled_overhead_percent=round(100 * (enabled / disabled - 1.0), 2),
        traced_overhead_percent=round(100 * (traced / disabled - 1.0), 2),
        guard_nanoseconds=round(per_check * 1e9, 1),
        disabled_overhead_percent=round(100 * overhead_ratio, 3),
    )
    emit_telemetry(
        build_payload(
            "obs_overhead",
            scale=SCALE,
            seed=SEED,
            jobs=JOBS,
            wall_seconds=disabled,
            requests=len(workload),
            obs_overhead_percent=round(100 * overhead_ratio, 3),
            extra={
                "enabled_seconds": round(enabled, 4),
                "enabled_overhead_percent": round(
                    100 * (enabled / disabled - 1.0), 2
                ),
                "traced_seconds": round(traced, 4),
                "traced_overhead_percent": round(
                    100 * (traced / disabled - 1.0), 2
                ),
                "guard_nanoseconds": round(per_check * 1e9, 1),
                "checks": checks,
            },
        )
    )
    print(
        f"\nobs overhead: guard {per_check * 1e9:.0f}ns/check x "
        f"{checks} checks, request {per_request * 1e6:.1f}us -> "
        f"disabled path {100 * overhead_ratio:.3f}% of replay; "
        f"enabled path {100 * (enabled / disabled - 1.0):+.1f}%; "
        f"decision tracing {100 * (traced / disabled - 1.0):+.1f}%"
    )
    if os.environ.get("REPRO_ASSERT_OBS_OVERHEAD", "1") != "0":
        assert overhead_ratio < 0.02, (
            f"disabled-path guards cost {100 * overhead_ratio:.2f}% of "
            "per-request replay time (>2%); the NULL_OBS fast path has "
            "grown per-request cost"
        )


def test_span_recording_overhead_reported(workload, benchmark):
    """Timeline spans are coarse by design — one span per replay, chunk,
    window close, and learner phase, never per request — so recording
    them should cost a few percent at most.  The enabled cost is
    **reported**, not asserted (it rides the same noisy runners as the
    enabled-recorder cell); what *is* asserted is that span capture
    changes nothing about the replay's accounting and that the disabled
    path stays covered by the <2% pin above (``Observation.spans_only``
    keeps ``enabled=False``, so the packed fast path never sees spans).
    """
    capacity = cache_bytes("cdn-a", 512)
    _replay_seconds(workload, lambda: NULL_OBS, rounds=1)  # warmup

    disabled, _ = _replay_seconds(workload, lambda: NULL_OBS)
    recorders = []

    def spans_obs():
        recorder = SpanRecorder()
        recorders.append(recorder)
        return Observation.spans_only(recorder)

    spanned, _ = _replay_seconds(workload, spans_obs)
    span_counts = [len(r) for r in recorders]
    assert all(count > 0 for count in span_counts), (
        "spans-enabled replay recorded no spans; instrumentation sites "
        "have been bypassed"
    )

    # Span capture must be invisible to the accounting.
    baseline = simulate(build_policy("lru", capacity), workload, obs=NULL_OBS)
    traced = simulate(
        build_policy("lru", capacity),
        workload,
        obs=Observation.spans_only(SpanRecorder()),
    )
    assert traced.counters() == baseline.counters(), (
        "span recording changed replay accounting"
    )

    overhead = spanned / disabled - 1.0
    benchmark.pedantic(
        lambda: simulate(
            build_policy("lru", capacity),
            workload,
            obs=Observation.spans_only(SpanRecorder()),
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        requests=len(workload),
        disabled_seconds=round(disabled, 4),
        spans_seconds=round(spanned, 4),
        spans_overhead_percent=round(100 * overhead, 2),
        spans_per_replay=span_counts[-1],
    )
    emit_telemetry(
        build_payload(
            "span_overhead",
            scale=SCALE,
            seed=SEED,
            jobs=JOBS,
            wall_seconds=spanned,
            requests=len(workload),
            obs_overhead_percent=round(100 * overhead, 2),
            extra={
                "disabled_seconds": round(disabled, 4),
                "spans_per_replay": span_counts[-1],
            },
        )
    )
    print(
        f"\nspan recording: {span_counts[-1]} spans/replay, "
        f"{spanned * 1e3:.1f}ms vs {disabled * 1e3:.1f}ms disabled -> "
        f"{100 * overhead:+.1f}%"
    )


def test_learner_telemetry_overhead_reported(workload, benchmark):
    """Learner telemetry fires at window closes and GBM refits — never
    per request — so the honest denominator is a *windowed LHR* replay,
    not the bare LRU loop above.  The enabled cost is **reported**, not
    asserted (score histograms + calibration moments ride the same noisy
    runners as the other enabled cells); what *is* asserted is that the
    telemetry changes nothing about the replay's accounting and that the
    disabled path stays covered by the <2% pin above
    (``Observation.sidecars_only`` keeps ``enabled=False``, so the
    packed fast path never sees the learner sink).
    """
    capacity = cache_bytes("cdn-a", 512)
    window = max(len(workload) // 32, 1)
    rounds = 3  # LHR replays dominate wall time; 3 medians suffice

    def lhr_replay(obs_factory):
        samples, last = [], None
        for _ in range(rounds):
            policy = build_policy("lhr", capacity)
            obs = obs_factory()
            start = time.perf_counter()
            last = simulate(
                policy, workload, window_requests=window, obs=obs
            )
            samples.append(time.perf_counter() - start)
        return _median(samples), last

    lhr_replay(lambda: NULL_OBS)  # warmup (lazy imports, GBM paths)
    plain, baseline = lhr_replay(lambda: NULL_OBS)
    observed, result = lhr_replay(
        lambda: Observation.sidecars_only(learner=LearnerTelemetry())
    )

    series = result.learner
    assert series is not None and series.windows > 0, (
        "learner-enabled replay recorded no windows; the LHR "
        "instrumentation sites have been bypassed"
    )
    assert baseline.learner is None, (
        "plain replay carried a learner series; the sink has leaked "
        "onto the disabled path"
    )
    # Telemetry must be invisible to the accounting.
    assert result.counters() == baseline.counters(), (
        "learner telemetry changed replay accounting"
    )

    overhead = observed / plain - 1.0
    per_window = (observed - plain) / series.windows
    benchmark.pedantic(
        lambda: simulate(
            build_policy("lhr", capacity),
            workload,
            window_requests=window,
            obs=Observation.sidecars_only(learner=LearnerTelemetry()),
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        requests=len(workload),
        windows=series.windows,
        plain_seconds=round(plain, 4),
        learner_seconds=round(observed, 4),
        learner_overhead_percent=round(100 * overhead, 2),
        learner_microseconds_per_window=round(per_window * 1e6, 1),
    )
    emit_telemetry(
        build_payload(
            "learner_overhead",
            scale=SCALE,
            seed=SEED,
            jobs=JOBS,
            wall_seconds=observed,
            requests=len(workload),
            obs_overhead_percent=round(100 * overhead, 2),
            extra={
                "plain_seconds": round(plain, 4),
                "windows": series.windows,
                "microseconds_per_window": round(per_window * 1e6, 1),
            },
        )
    )
    print(
        f"\nlearner telemetry: {series.windows} windows/replay, "
        f"{observed * 1e3:.1f}ms vs {plain * 1e3:.1f}ms plain LHR -> "
        f"{100 * overhead:+.1f}% ({per_window * 1e6:.0f}us/window)"
    )


def test_ledger_record_overhead_under_two_percent(workload, benchmark, tmp_path):
    """Persisting a RunRecord costs <2% of the sweep it records.

    The run ledger defaults to on, so its write path (series packing,
    uncompressed npz, manifest rename) rides every ``simulate`` /
    ``compare`` invocation — but it runs **once per invocation**, not per
    cell, so the honest denominator is what one ledgered invocation
    replays: the default ``repro compare`` policy grid.  This pins the
    budget that justified skipping npz compression.  Waive with
    ``REPRO_ASSERT_OBS_OVERHEAD=0``.
    """
    from repro.sim import run_comparison

    capacity = cache_bytes("cdn-a", 512)
    window = max(len(workload) // 64, 1)
    policies = ["lhr", "lru", "w-tinylfu"]  # the CLI's default grid
    config = {
        "trace": "cdn-a",
        "policies": policies,
        "capacities": [capacity],
        "window": window,
    }
    rounds = 3  # the sweep dominates wall time; 3 medians suffice
    replay_samples, record_samples = [], []
    for round_index in range(rounds):
        start = time.perf_counter()
        results = run_comparison(
            workload, policies, [capacity], window_requests=window
        )
        replay_samples.append(time.perf_counter() - start)
        # A fresh root per round keeps directory size out of the timing.
        ledger = RunLedger(tmp_path / f"ledger{round_index}")
        start = time.perf_counter()
        ledger.record(record_from_results("compare", config, results))
        record_samples.append(time.perf_counter() - start)
    result = results[0]
    replay = _median(replay_samples)
    recording = _median(record_samples)
    overhead_ratio = recording / replay

    benchmark.pedantic(
        lambda: RunLedger(tmp_path / "bench").record(
            record_from_results("compare", config, results)
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        requests=len(workload),
        windows=len(result.windows),
        replay_seconds=round(replay, 4),
        record_seconds=round(recording, 5),
        ledger_overhead_percent=round(100 * overhead_ratio, 3),
    )
    print(
        f"\nledger record: {recording * 1e3:.2f}ms vs {replay * 1e3:.1f}ms "
        f"windowed replay ({len(result.windows)} windows) -> "
        f"{100 * overhead_ratio:.3f}% overhead"
    )
    if os.environ.get("REPRO_ASSERT_OBS_OVERHEAD", "1") != "0":
        assert overhead_ratio < 0.02, (
            f"run-ledger persistence costs {100 * overhead_ratio:.2f}% of a "
            "windowed replay (>2%); the default-on write path has grown"
        )


#: Probes per policy when timing ``metadata_bytes()`` below.
PROBE_ITERS = 2_000


def test_metadata_probe_cost_is_flat(workload, benchmark):
    """The engine samples ``metadata_bytes()`` on a fixed request cadence,
    so the probe must not walk per-object state: LRU-K keeps its history
    slot count incrementally, the feature store its gap-slot total, and
    the GBM caches its tree walk per (re)fit.  This reports nanoseconds
    per probe on *populated* policies and asserts the probe stays far
    below one request's replay cost — a probe that silently went O(n)
    would dominate packed replay, where the probe is the only per-chunk
    Python work besides the kernel."""
    capacity = cache_bytes("cdn-a", 512)
    probed = {}
    for name in ("lru", "lru-4", "lhr"):
        policy = build_policy(name, capacity)
        simulate(policy, workload)
        start = time.perf_counter()
        for _ in range(PROBE_ITERS):
            policy.metadata_bytes()
        per_probe = (time.perf_counter() - start) / PROBE_ITERS
        probed[name] = per_probe
    benchmark.pedantic(
        lambda: build_policy("lru-4", capacity).metadata_bytes(),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {f"{name}_probe_nanoseconds": round(t * 1e9) for name, t in probed.items()}
    )
    print(
        "\nmetadata probes: "
        + ", ".join(f"{name} {t * 1e6:.2f}us" for name, t in probed.items())
    )
    if os.environ.get("REPRO_ASSERT_OBS_OVERHEAD", "1") != "0":
        # Generous bound: even LHR's probe (store + model + detector)
        # must stay under 50us — population-proportional walks measure
        # in the hundreds of microseconds at this trace scale.
        assert max(probed.values()) < 50e-6, (
            f"metadata_bytes() probe costs {max(probed.values()) * 1e6:.0f}us; "
            "a cache has degraded to walking per-object state"
        )
