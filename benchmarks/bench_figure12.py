"""Figure 12 / Appendix A.2 — accuracy of the LSM drift-detection model.

Synthetic setup from the appendix: requests follow a Zipf distribution
whose parameter changes every ``segment`` requests; with epsilon = 0.002
the detector should flag (nearly) every true change and stay quiet on
stable windows.
"""

import numpy as np

from benchmarks.common import SCALE, emit, format_rows
from repro.core.detection import DriftDetector
from repro.util.sampling import ZipfSampler

NUM_CONTENTS = 2_000
REQUESTS_PER_WINDOW = max(int(100_000 * SCALE * 10), 20_000)
ALPHAS = [0.7, 0.7, 0.7, 1.0, 1.0, 0.8, 0.8, 0.8, 1.1, 1.1, 0.9, 0.9]


def build_figure12():
    rng = np.random.default_rng(5)
    detector = DriftDetector(epsilon=0.02)
    truth = []
    previous_alpha = None
    for alpha in ALPHAS:
        sampler = ZipfSampler(NUM_CONTENTS, alpha, rng=rng)
        ids = sampler.sample(REQUESTS_PER_WINDOW)
        counts = np.bincount(ids, minlength=NUM_CONTENTS)
        detector.observe_window({i: int(c) for i, c in enumerate(counts) if c})
        truth.append(previous_alpha is None or alpha != previous_alpha)
        previous_alpha = alpha
    flags = [record.drifted for record in detector.records]
    estimates = detector.alphas()
    rows = [
        {
            "window": i,
            "true_alpha": ALPHAS[i],
            "estimated_alpha": round(estimates[i], 3),
            "true_change": truth[i],
            "detected": flags[i],
        }
        for i in range(len(ALPHAS))
    ]
    return rows


def test_figure12(benchmark):
    rows = benchmark.pedantic(build_figure12, rounds=1, iterations=1)
    emit("figure12", format_rows(rows))
    detected = [row["detected"] for row in rows]
    truth = [row["true_change"] for row in rows]
    true_positives = sum(d and t for d, t in zip(detected, truth))
    false_negatives = sum(t and not d for d, t in zip(detected, truth))
    false_positives = sum(d and not t for d, t in zip(detected, truth))
    # Appendix A.2 reports ~97-99% detection accuracy; at bench scale we
    # require every true change caught and at most one false alarm.
    assert false_negatives == 0
    assert false_positives <= 1
    assert true_positives == sum(truth)
    # The LSM alpha estimates track the ground truth.
    for row in rows:
        assert abs(row["estimated_alpha"] - row["true_alpha"]) < 0.25, row
