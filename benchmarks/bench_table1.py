"""Table 1 — key characteristics of the four (stand-in) traces.

Regenerates every column of Table 1 from the synthetic stand-ins; the
absolute row values scale linearly with REPRO_SCALE (durations and
content sizes are not scaled).
"""

from benchmarks.common import TRACE_NAMES, emit, format_rows, trace
from repro.traces import summarize_trace


def build_table1() -> list[dict]:
    return [summarize_trace(trace(name)).as_table_row() for name in TRACE_NAMES]


def test_table1(benchmark):
    rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    emit("table1", format_rows(rows))
    by_name = {row["Dataset"]: row for row in rows}
    # Shape checks against Table 1: CDN-C has the largest mean size and a
    # tight max (~101 MB); CDN-B requests the most total bytes per
    # request; the Wiki trace is the shortest.
    assert by_name["cdn-c"]["Mean content size (MB)"] > by_name["cdn-a"]["Mean content size (MB)"]
    assert by_name["cdn-c"]["Max content size (MB)"] <= 102
    assert by_name["wiki"]["Duration (Hours)"] < by_name["cdn-a"]["Duration (Hours)"]
    assert by_name["cdn-b"]["Max content size (MB)"] > by_name["cdn-a"]["Max content size (MB)"]
